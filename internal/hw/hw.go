// Package hw models the hardware side of a Photon deployment: GPU
// descriptors, client silo topologies, the VRAM-driven CalcBatchSize
// heuristic from Algorithm 1, the DeepSpeed-AutoTuner-style training
// strategy selection of Section 4, the paper's measured local throughput
// values (Appendix B.1), and Model-FLOPs-Utilization accounting.
package hw

import (
	"fmt"
	"math"

	"photon/internal/nn"
)

// GPU describes one hardware accelerator.
type GPU struct {
	Name       string
	VRAMGiB    float64
	PeakTFLOPS float64 // dense BF16 peak
}

// Common accelerator presets. Photon's experiments use H100s; the consumer
// card supports the "collaboration via commodity hardware" scenario.
var (
	H100    = GPU{Name: "H100", VRAMGiB: 80, PeakTFLOPS: 989}
	A100    = GPU{Name: "A100", VRAMGiB: 80, PeakTFLOPS: 312}
	RTX4090 = GPU{Name: "RTX4090", VRAMGiB: 24, PeakTFLOPS: 165}
)

// Interconnect classifies the link between GPUs or nodes.
type Interconnect int

// Interconnect kinds in decreasing bandwidth order.
const (
	NVLink Interconnect = iota
	InfiniBand
	RoCE
	PCIe
	Ethernet
)

// String implements fmt.Stringer.
func (ic Interconnect) String() string {
	switch ic {
	case NVLink:
		return "nvlink"
	case InfiniBand:
		return "infiniband"
	case RoCE:
		return "roce"
	case PCIe:
		return "pcie"
	default:
		return "ethernet"
	}
}

// IsRDMA reports whether the interconnect supports RDMA-class bandwidth,
// the HasRDMA check in Algorithm 1 line 16.
func (ic Interconnect) IsRDMA() bool {
	return ic == NVLink || ic == InfiniBand || ic == RoCE
}

// Node is one server with one or more GPUs.
type Node struct {
	GPUs     []GPU
	IntraGPU Interconnect // link between GPUs inside the node
}

// Silo is one federated participant's compute: one or more nodes plus the
// interconnect between them.
type Silo struct {
	Region    string
	Nodes     []Node
	InterNode Interconnect // link between nodes within the silo
	WANGbps   float64      // Internet bandwidth toward the aggregator
}

// NumGPUs returns the silo's total accelerator count.
func (s Silo) NumGPUs() int {
	n := 0
	for _, node := range s.Nodes {
		n += len(node.GPUs)
	}
	return n
}

// TotalVRAMGiB returns the pooled VRAM across all GPUs.
func (s Silo) TotalVRAMGiB() float64 {
	var v float64
	for _, node := range s.Nodes {
		for _, g := range node.GPUs {
			v += g.VRAMGiB
		}
	}
	return v
}

// Memory-model constants for CalcBatchSize. Mixed-precision AdamW training
// holds BF16 weights (2B) and gradients (2B) plus FP32 master weights and
// two Adam moments (12B) per parameter, and the activation footprint per
// sample combines the linear seq·dim·blocks term with the quadratic
// attention-probability term.
const (
	bytesPerParam   = 16.0
	actBytesPerUnit = 32.0 // bytes per (position · channel · block) of activations
	vramUsableFrac  = 0.90 // headroom the allocator keeps free
	giB             = 1 << 30
)

// ActivationBytesPerSample estimates the activation memory one sample of the
// given config needs during a training step (no activation checkpointing,
// matching the paper's 125M setup).
func ActivationBytesPerSample(cfg nn.Config) float64 {
	linear := float64(cfg.SeqLen) * float64(cfg.Dim) * float64(cfg.Blocks) * actBytesPerUnit
	attn := float64(cfg.SeqLen) * float64(cfg.SeqLen) * float64(cfg.Heads) * float64(cfg.Blocks) * 2
	return linear + attn
}

// CalcBatchSize implements Algorithm 1's CalcBatchSize: the largest
// power-of-two per-device batch that fits the model plus activations inside
// the pooled VRAM of nGPUs devices (sharding policy spreads weights). It
// returns 0 when even batch size 1 does not fit.
func CalcBatchSize(cfg nn.Config, gpu GPU, nGPUs int) int {
	if nGPUs < 1 {
		return 0
	}
	usable := gpu.VRAMGiB * giB * vramUsableFrac * float64(nGPUs)
	weights := float64(cfg.ParamCount()) * bytesPerParam
	free := usable - weights
	if free <= 0 {
		return 0
	}
	perSample := ActivationBytesPerSample(cfg)
	b := int(free / perSample)
	if b < 1 {
		return 0
	}
	// Round down to a power of two for allocator-friendly shapes.
	p := 1
	for p*2 <= b {
		p *= 2
	}
	return p
}

// FitsSingleGPU reports whether the model trains with batch ≥ 1 on one GPU.
func FitsSingleGPU(cfg nn.Config, gpu GPU) bool { return CalcBatchSize(cfg, gpu, 1) >= 1 }

// Strategy is the local training strategy an LLM-C selects (Section 4,
// "Optimal Training Strategy Selection").
type Strategy int

// Strategies in the order the heuristic considers them.
const (
	// StrategySingleGPU dedicates one GPU to the whole model.
	StrategySingleGPU Strategy = iota
	// StrategyDDP replicates the model across GPUs with synchronized grads.
	StrategyDDP
	// StrategyFSDP shards parameters across GPUs when one GPU cannot hold
	// the model.
	StrategyFSDP
	// StrategySubFederation nests another level of federated optimization
	// across poorly connected nodes (Algorithm 1 lines 19-25).
	StrategySubFederation
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategySingleGPU:
		return "single-gpu"
	case StrategyDDP:
		return "ddp"
	case StrategyFSDP:
		return "fsdp"
	default:
		return "sub-federation"
	}
}

// SelectStrategy implements the Section 4 heuristic:
//  1. model + viable batch on a single GPU and the silo has one GPU →
//     single-GPU;
//  2. multi-GPU node → DDP when the model fits one GPU, else FSDP;
//  3. multi-node → DDP/FSDP over RDMA-class interconnects, otherwise a
//     sub-federation with further data sub-partitioning.
//
// It returns an error when the model cannot fit even with all silo VRAM.
func SelectStrategy(cfg nn.Config, silo Silo) (Strategy, error) {
	if len(silo.Nodes) == 0 || silo.NumGPUs() == 0 {
		return 0, fmt.Errorf("hw: silo %q has no GPUs", silo.Region)
	}
	gpu := silo.Nodes[0].GPUs[0]
	if CalcBatchSize(cfg, gpu, silo.NumGPUs()) < 1 {
		return 0, fmt.Errorf("hw: model %s does not fit in silo %q (%d GPUs, %.0f GiB)",
			cfg.Name, silo.Region, silo.NumGPUs(), silo.TotalVRAMGiB())
	}
	fitsOne := FitsSingleGPU(cfg, gpu)
	if len(silo.Nodes) == 1 {
		node := silo.Nodes[0]
		if len(node.GPUs) == 1 {
			if fitsOne {
				return StrategySingleGPU, nil
			}
			return 0, fmt.Errorf("hw: model %s does not fit the single GPU in silo %q", cfg.Name, silo.Region)
		}
		if fitsOne {
			return StrategyDDP, nil
		}
		return StrategyFSDP, nil
	}
	if silo.InterNode.IsRDMA() {
		if fitsOne {
			return StrategyDDP, nil
		}
		return StrategyFSDP, nil
	}
	return StrategySubFederation, nil
}

// MFU returns Model-FLOPs-Utilization for a client running throughput ν
// (batches/second) with the given per-device batch size: achieved training
// FLOPs (≈3× forward for fwd+bwd) divided by aggregate peak FLOPs.
func MFU(cfg nn.Config, gpu GPU, nGPUs int, batchesPerSec float64, batchSize int) float64 {
	if nGPUs < 1 || batchesPerSec <= 0 || batchSize < 1 {
		return 0
	}
	achieved := batchesPerSec * float64(batchSize) * float64(cfg.SeqLen) * 3 * cfg.FLOPsPerToken()
	peak := gpu.PeakTFLOPS * 1e12 * float64(nGPUs)
	return achieved / peak
}

// PaperThroughput returns the empirical local throughput ν (batches/second)
// the paper reports in Appendix B.1 for each model size, for the federated
// and centralized configurations. Unknown sizes return 0.
func PaperThroughput(modelName string, federated bool) float64 {
	type pair struct{ fed, cent float64 }
	table := map[string]pair{
		"125M": {2, 2},
		"1.3B": {0.147, 0.839},
		"3B":   {0.144, 0.395},
		"7B":   {0.032, 0.12},
	}
	p, ok := table[modelName]
	if !ok {
		return 0
	}
	if federated {
		return p.fed
	}
	return p.cent
}

// ModelSizeMB returns the BF16 on-the-wire size of the model in megabytes,
// the S term of the Appendix B.1 communication model.
func ModelSizeMB(cfg nn.Config) float64 {
	return float64(cfg.ParamCount()) * 2 / 1e6
}

// EstimateLocalThroughput predicts batches/second for a silo from peak
// FLOPs and an efficiency factor, used when no measured ν is available
// (e.g. tiny proxy models).
func EstimateLocalThroughput(cfg nn.Config, gpu GPU, nGPUs, batchSize int, efficiency float64) float64 {
	if batchSize < 1 || nGPUs < 1 {
		return 0
	}
	if efficiency <= 0 {
		efficiency = 0.35
	}
	flopsPerBatch := 3 * cfg.FLOPsPerToken() * float64(cfg.SeqLen) * float64(batchSize)
	return efficiency * gpu.PeakTFLOPS * 1e12 * float64(nGPUs) / flopsPerBatch
}

// Utilization is a crude GPU busy-fraction model: compute-bound work keeps
// the device busy except for data/stream stalls that shrink with batch size.
func Utilization(batchSize int) float64 {
	if batchSize < 1 {
		return 0
	}
	u := 1 - 1/(1+float64(batchSize)/4)
	return math.Min(0.99, 0.6+0.4*u)
}
