package hw

import (
	"testing"
	"testing/quick"

	"photon/internal/nn"
)

func TestCalcBatchSize125MOnH100(t *testing.T) {
	// The paper trains 125M on a single H100 with hardware batch 32; the
	// heuristic should land at a comparable power of two.
	b := CalcBatchSize(nn.Config125M, H100, 1)
	if b < 16 || b > 64 {
		t.Fatalf("125M/H100 batch: got %d, want 16..64 (paper uses 32)", b)
	}
	if b&(b-1) != 0 {
		t.Fatalf("batch %d not a power of two", b)
	}
}

func Test7BDoesNotFitSingleGPU(t *testing.T) {
	if FitsSingleGPU(nn.Config7B, H100) {
		t.Fatal("7B with AdamW state cannot fit one 80GiB GPU")
	}
	// But it fits a paper-style 8xH100 client.
	if CalcBatchSize(nn.Config7B, H100, 8) < 1 {
		t.Fatal("7B should fit 8 pooled H100s")
	}
}

func TestCalcBatchSizeDegenerate(t *testing.T) {
	if CalcBatchSize(nn.Config125M, H100, 0) != 0 {
		t.Fatal("0 GPUs must yield batch 0")
	}
	tiny := GPU{Name: "toy", VRAMGiB: 0.001, PeakTFLOPS: 1}
	if CalcBatchSize(nn.Config125M, tiny, 1) != 0 {
		t.Fatal("model larger than VRAM must yield batch 0")
	}
}

func TestCalcBatchSizeMonotoneInGPUs(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%8
		b1 := CalcBatchSize(nn.Config1B, H100, n)
		b2 := CalcBatchSize(nn.Config1B, H100, n+1)
		return b2 >= b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectStrategy(t *testing.T) {
	oneGPU := Silo{Region: "a", Nodes: []Node{{GPUs: []GPU{H100}, IntraGPU: PCIe}}}
	multiGPU := Silo{Region: "b", Nodes: []Node{{GPUs: []GPU{H100, H100, H100, H100}, IntraGPU: NVLink}}}
	multiNodeRDMA := Silo{Region: "c", InterNode: InfiniBand,
		Nodes: []Node{{GPUs: []GPU{H100, H100}}, {GPUs: []GPU{H100, H100}}}}
	multiNodeSlow := Silo{Region: "d", InterNode: Ethernet,
		Nodes: []Node{{GPUs: []GPU{H100, H100}}, {GPUs: []GPU{H100, H100}}}}

	cases := []struct {
		cfg  nn.Config
		silo Silo
		want Strategy
	}{
		{nn.Config125M, oneGPU, StrategySingleGPU},
		{nn.Config125M, multiGPU, StrategyDDP},
		{nn.Config7B, multiGPU, StrategyFSDP}, // 7B does not fit one GPU
		{nn.Config125M, multiNodeRDMA, StrategyDDP},
		{nn.Config125M, multiNodeSlow, StrategySubFederation},
	}
	for i, c := range cases {
		got, err := SelectStrategy(c.cfg, c.silo)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d (%s on %s): got %v want %v", i, c.cfg.Name, c.silo.Region, got, c.want)
		}
	}
}

func TestSelectStrategyErrors(t *testing.T) {
	if _, err := SelectStrategy(nn.Config125M, Silo{Region: "empty"}); err == nil {
		t.Fatal("empty silo must error")
	}
	oneGPU := Silo{Region: "x", Nodes: []Node{{GPUs: []GPU{H100}}}}
	if _, err := SelectStrategy(nn.Config7B, oneGPU); err == nil {
		t.Fatal("7B on a single GPU must error")
	}
}

func TestInterconnectRDMA(t *testing.T) {
	for ic, want := range map[Interconnect]bool{
		NVLink: true, InfiniBand: true, RoCE: true, PCIe: false, Ethernet: false,
	} {
		if got := ic.IsRDMA(); got != want {
			t.Errorf("%v.IsRDMA() = %v, want %v", ic, got, want)
		}
	}
}

func TestMFUBounds(t *testing.T) {
	// MFU with the paper's measured ν must be positive and below ~1.3
	// (the paper itself reports >1 MFU for Fed-1.3B, so allow headroom).
	mfu := MFU(nn.Config125M, H100, 1, 2.0, 32)
	if mfu <= 0 || mfu > 1.3 {
		t.Fatalf("125M MFU out of plausible range: %v", mfu)
	}
	if MFU(nn.Config125M, H100, 0, 2, 32) != 0 {
		t.Fatal("degenerate MFU inputs must return 0")
	}
}

func TestPaperThroughputTable(t *testing.T) {
	cases := []struct {
		name string
		fed  bool
		want float64
	}{
		{"125M", true, 2}, {"125M", false, 2},
		{"1.3B", true, 0.147}, {"1.3B", false, 0.839},
		{"3B", true, 0.144}, {"3B", false, 0.395},
		{"7B", true, 0.032}, {"7B", false, 0.12},
		{"unknown", true, 0},
	}
	for _, c := range cases {
		if got := PaperThroughput(c.name, c.fed); got != c.want {
			t.Errorf("PaperThroughput(%s, fed=%v) = %v, want %v", c.name, c.fed, got, c.want)
		}
	}
}

func TestModelSizeMB(t *testing.T) {
	// 7B in BF16 ≈ 13-15 GB on the wire.
	mb := ModelSizeMB(nn.Config7B)
	if mb < 12000 || mb > 16000 {
		t.Fatalf("7B wire size: got %v MB", mb)
	}
}

func TestTable1Deployments(t *testing.T) {
	deps := Table1Deployments()
	if len(deps) != 4 {
		t.Fatalf("want 4 deployments, got %d", len(deps))
	}
	byName := map[string]Deployment{}
	for _, d := range deps {
		byName[d.ModelName] = d
		if d.AggRegion != "England" {
			t.Errorf("%s: aggregator must be in England", d.ModelName)
		}
	}
	// Table 1 row checks.
	if d := byName["7B"]; d.TotalClients() != 4 || d.TotalGPUs() != 32 {
		t.Errorf("7B: %d clients / %d GPUs, want 4/32", d.TotalClients(), d.TotalGPUs())
	}
	if d := byName["3B"]; d.TotalClients() != 4 || d.TotalGPUs() != 16 {
		t.Errorf("3B: %d clients / %d GPUs, want 4/16", d.TotalClients(), d.TotalGPUs())
	}
	if d := byName["1.3B"]; d.TotalClients() != 8 {
		t.Errorf("1.3B: %d clients, want 8", d.TotalClients())
	}
	if d := byName["125M"]; d.TotalClients() != 10 || d.TotalGPUs() != 10 {
		t.Errorf("125M: %d clients / %d GPUs, want 10/10", d.TotalClients(), d.TotalGPUs())
	}
}

func TestRegionClientsMergesAndSorts(t *testing.T) {
	d := Deployment{ModelName: "x", AggRegion: "England", Silos: []RegionSilo{
		{Region: "Utah", Clients: 2, GPUsPerClient: 1},
		{Region: "Texas", Clients: 1, GPUsPerClient: 1},
		{Region: "Utah", Clients: 3, GPUsPerClient: 1}, // duplicate row merges
		{Region: "Quebec", Clients: 0, GPUsPerClient: 1},
	}}
	rc := d.RegionClients()
	if rc["Utah"] != 5 || rc["Texas"] != 1 {
		t.Fatalf("RegionClients = %v, want Utah 5 / Texas 1", rc)
	}
	if _, ok := rc["Quebec"]; ok {
		t.Fatal("zero-client region must be omitted")
	}
	regions := d.Regions()
	if len(regions) != 2 || regions[0] != "Texas" || regions[1] != "Utah" {
		t.Fatalf("Regions = %v, want sorted [Texas Utah]", regions)
	}
}

func TestDeploymentFor(t *testing.T) {
	if _, ok := DeploymentFor(nn.Config7B); !ok {
		t.Fatal("7B deployment missing")
	}
	if _, ok := DeploymentFor(nn.ConfigTiny); ok {
		t.Fatal("tiny config should have no Table 1 deployment")
	}
}

func TestSiloForRegion(t *testing.T) {
	s := SiloForRegion(RegionSilo{Region: "Utah", Clients: 1, GPUsPerClient: 8}, 2.0)
	if s.NumGPUs() != 8 || s.Region != "Utah" || s.WANGbps != 2.0 {
		t.Fatalf("bad silo: %+v", s)
	}
	if s.TotalVRAMGiB() != 8*80 {
		t.Fatalf("VRAM: got %v", s.TotalVRAMGiB())
	}
}

func TestEstimateLocalThroughputSanity(t *testing.T) {
	nu := EstimateLocalThroughput(nn.Config125M, H100, 1, 32, 0.35)
	// Paper measures ν = 2 batches/s for this setting; the estimate should
	// be the right order of magnitude.
	if nu < 0.3 || nu > 30 {
		t.Fatalf("throughput estimate implausible: %v", nu)
	}
	if EstimateLocalThroughput(nn.Config125M, H100, 1, 0, 0.35) != 0 {
		t.Fatal("batch 0 must yield 0 throughput")
	}
}

func TestUtilizationShape(t *testing.T) {
	if Utilization(0) != 0 {
		t.Fatal("zero batch must be zero util")
	}
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 32, 128} {
		u := Utilization(b)
		if u <= prev || u > 0.99 {
			t.Fatalf("utilization not increasing/bounded at batch %d: %v", b, u)
		}
		prev = u
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategySingleGPU: "single-gpu", StrategyDDP: "ddp",
		StrategyFSDP: "fsdp", StrategySubFederation: "sub-federation",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
