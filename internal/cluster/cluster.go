// Package cluster is Photon's elastic membership and fault-tolerance
// control plane. It tracks which LLM clients are part of a federation run
// right now — members join, leave, are evicted on failure, and may rejoin
// later under the same identity — and scores each member's health from
// heartbeat liveness and observed round behavior so the aggregator can
// sample cohorts away from flaky or chronically slow clients.
//
// The registry is deliberately transport-agnostic: it stores identities and
// statistics, never connections. The networked aggregator (internal/fed)
// keeps its own ID→connection map and drives the registry from its accept
// loop, per-member readers, and round collector.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// State is a member's lifecycle position.
type State int

// Member lifecycle states.
const (
	// StateAlive means the member is connected and eligible for sampling.
	StateAlive State = iota
	// StateLeft means the member departed voluntarily (clean shutdown).
	StateLeft
	// StateEvicted means the registry removed the member after an I/O
	// failure or missed heartbeats. An evicted identity may rejoin.
	StateEvicted
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateLeft:
		return "left"
	case StateEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// RoundOutcome classifies a member's behavior in one federated round.
type RoundOutcome int

// Round outcomes observed by the aggregator.
const (
	// OutcomeOK: the member returned its update in time.
	OutcomeOK RoundOutcome = iota
	// OutcomeStraggler: the member missed the round deadline; its update
	// (if it ever arrives) is discarded, but the member stays alive.
	OutcomeStraggler
	// OutcomeFailed: the member's connection broke during the round.
	OutcomeFailed
)

// Health-score EWMA parameters: each observation moves the score 20% of the
// way toward its target, so ~3 consecutive straggles halve a member's
// sampling weight while one bad round is quickly forgiven.
const (
	healthAlpha     = 0.2
	healthOK        = 1.0
	healthStraggler = 0.25
	healthFailed    = 0.0
	rejoinPenalty   = 0.7 // multiplier applied when an identity rejoins
	healthFloor     = 0.05
)

// Config configures a Registry.
type Config struct {
	// HeartbeatInterval is the expected beat cadence. Zero disables
	// liveness expiry entirely (ExpireDead never evicts).
	HeartbeatInterval time.Duration
	// MissedBeats is how many intervals without a heartbeat mark a member
	// dead (default 3).
	MissedBeats int
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// member is the registry's internal record. All fields are guarded by the
// registry mutex; snapshots escape only as Info values.
type member struct {
	id       string
	index    int // join order, for deterministic iteration
	state    State
	joinedAt time.Time
	lastBeat time.Time

	health     float64
	rttEWMA    time.Duration // heartbeat round-trip EWMA
	latEWMA    time.Duration // observed round latency EWMA
	rounds     int           // rounds the member returned an update for
	straggles  int
	failures   int
	rejoins    int
	evictedFor string
}

// Info is a race-free snapshot of one member.
type Info struct {
	ID           string
	Index        int // join order (stable across rejoins)
	State        State
	Health       float64 // (0,1]; 1 = perfectly reliable
	HeartbeatRTT time.Duration
	RoundLatency time.Duration
	Rounds       int // rounds with a delivered update
	Straggles    int
	Failures     int
	Rejoins      int
	EvictedFor   string // reason, when State == StateEvicted
}

// Stats counts membership churn. Registry keeps both running totals and a
// resettable window (RoundDelta) the aggregator drains once per round.
type Stats struct {
	Joins      int // first-time joins
	Rejoins    int // previously-seen identities that came back
	Leaves     int
	Evictions  int
	Stragglers int // cohort slots dropped at a round deadline

	// HeartbeatRTTMs is the mean heartbeat round-trip observed in the
	// window, in milliseconds (0 when no beats were observed).
	HeartbeatRTTMs float64
	// HeartbeatRTTP99Ms is the 99th-percentile round-trip over a small
	// fixed-size sketch of the most recent beats (0 when none observed).
	// The mean hides tail latency entirely — one slow member per window
	// barely moves it — so the p99 is what surfaces network stragglers.
	HeartbeatRTTP99Ms float64
}

func (s *Stats) add(o Stats, beats int, rttSum time.Duration) {
	s.Joins += o.Joins
	s.Rejoins += o.Rejoins
	s.Leaves += o.Leaves
	s.Evictions += o.Evictions
	s.Stragglers += o.Stragglers
	if beats > 0 {
		// Keep sub-millisecond precision: localhost RTTs are microseconds.
		s.HeartbeatRTTMs = float64(rttSum) / float64(beats) / float64(time.Millisecond)
	}
}

// rttSketchSize bounds the quantile sketch: a plain ring of the most
// recent beats. Deterministic (no sampling randomness), O(1) per beat,
// and 256 entries is plenty for a p99 over a round window.
const rttSketchSize = 256

type rttSketch struct {
	ring [rttSketchSize]time.Duration
	pos  int
	n    int
}

func (s *rttSketch) add(d time.Duration) {
	s.ring[s.pos] = d
	s.pos = (s.pos + 1) % rttSketchSize
	if s.n < rttSketchSize {
		s.n++
	}
}

func (s *rttSketch) reset() { s.pos, s.n = 0, 0 }

// p99Ms sorts a copy of the retained beats and returns the 99th
// percentile in milliseconds (0 when empty).
func (s *rttSketch) p99Ms() float64 {
	if s.n == 0 {
		return 0
	}
	buf := make([]time.Duration, s.n)
	copy(buf, s.ring[:s.n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Same index rule as serve.Engine's latency ring, so "p99" means the
	// same thing across the codebase.
	return float64(buf[(s.n*99)/100]) / float64(time.Millisecond)
}

// Registry tracks federation membership. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	nextIdx int

	totals    Stats
	window    Stats
	winBeats  int
	winRTTSum time.Duration
	totBeats  int
	totRTTSum time.Duration
	winRTT    rttSketch
	totRTT    rttSketch
}

// New builds a registry. The zero Config is valid: no liveness expiry, the
// wall clock, and 3 missed beats once an interval is set.
func New(cfg Config) *Registry {
	if cfg.MissedBeats <= 0 {
		cfg.MissedBeats = 3
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Registry{cfg: cfg, members: make(map[string]*member)}
}

// Join registers id as alive and returns whether this identity was seen
// before (a rejoin). Joining an already-alive identity is also a rejoin:
// the caller is expected to have displaced the stale connection.
func (r *Registry) Join(id string) (rejoined bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Clock()
	m, ok := r.members[id]
	if !ok {
		r.members[id] = &member{
			id: id, index: r.nextIdx, state: StateAlive,
			joinedAt: now, lastBeat: now, health: healthOK,
		}
		r.nextIdx++
		r.window.Joins++
		r.totals.Joins++
		return false
	}
	m.state = StateAlive
	m.joinedAt = now
	m.lastBeat = now
	m.rejoins++
	m.evictedFor = ""
	m.health = math.Max(healthFloor, m.health*rejoinPenalty)
	r.window.Rejoins++
	r.totals.Rejoins++
	return true
}

// Leave marks id as voluntarily departed.
func (r *Registry) Leave(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[id]; ok && m.state == StateAlive {
		m.state = StateLeft
		r.window.Leaves++
		r.totals.Leaves++
	}
}

// Evict removes id from the alive set with a reason, returning whether the
// member was alive. The identity may rejoin later.
func (r *Registry) Evict(id, reason string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictLocked(id, reason)
}

func (r *Registry) evictLocked(id, reason string) bool {
	m, ok := r.members[id]
	if !ok || m.state != StateAlive {
		return false
	}
	m.state = StateEvicted
	m.evictedFor = reason
	m.failures++
	m.health = math.Max(healthFloor, m.health+healthAlpha*(healthFailed-m.health))
	r.window.Evictions++
	r.totals.Evictions++
	return true
}

// Heartbeat records a beat (and its round-trip time, 0 if unknown) for id,
// returning whether the member is currently alive.
func (r *Registry) Heartbeat(id string, rtt time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok || m.state != StateAlive {
		return false
	}
	m.lastBeat = r.cfg.Clock()
	if rtt > 0 {
		if m.rttEWMA == 0 {
			m.rttEWMA = rtt
		} else {
			m.rttEWMA += time.Duration(healthAlpha * float64(rtt-m.rttEWMA))
		}
		r.winBeats++
		r.winRTTSum += rtt
		r.totBeats++
		r.totRTTSum += rtt
		r.winRTT.add(rtt)
		r.totRTT.add(rtt)
	}
	return true
}

// ObserveRound feeds one member's round behavior into its health score and
// latency EWMA. Stragglers are also counted in the round window.
func (r *Registry) ObserveRound(id string, latency time.Duration, outcome RoundOutcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return
	}
	target := healthOK
	switch outcome {
	case OutcomeOK:
		m.rounds++
		m.lastBeat = r.cfg.Clock() // a delivered update is proof of life
	case OutcomeStraggler:
		target = healthStraggler
		m.straggles++
		r.window.Stragglers++
		r.totals.Stragglers++
	case OutcomeFailed:
		target = healthFailed
		m.failures++
	}
	m.health = math.Max(healthFloor, m.health+healthAlpha*(target-m.health))
	if latency > 0 {
		if m.latEWMA == 0 {
			m.latEWMA = latency
		} else {
			m.latEWMA += time.Duration(healthAlpha * float64(latency-m.latEWMA))
		}
	}
}

// ExpireDead evicts every alive member whose last heartbeat is older than
// MissedBeats×HeartbeatInterval and returns their IDs. It is a no-op when
// the registry has no heartbeat interval configured.
func (r *Registry) ExpireDead() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.HeartbeatInterval <= 0 {
		return nil
	}
	cutoff := r.cfg.Clock().Add(-time.Duration(r.cfg.MissedBeats) * r.cfg.HeartbeatInterval)
	var dead []string
	for _, m := range r.sortedLocked() {
		if m.state == StateAlive && m.lastBeat.Before(cutoff) {
			dead = append(dead, m.id)
		}
	}
	for _, id := range dead {
		r.evictLocked(id, "missed heartbeats")
	}
	return dead
}

// Alive returns snapshots of the alive members in join order.
func (r *Registry) Alive() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Info
	for _, m := range r.sortedLocked() {
		if m.state == StateAlive {
			out = append(out, r.infoLocked(m))
		}
	}
	return out
}

// AliveCount returns the number of alive members.
func (r *Registry) AliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.members {
		if m.state == StateAlive {
			n++
		}
	}
	return n
}

// Get returns a snapshot of id's record.
func (r *Registry) Get(id string) (Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return Info{}, false
	}
	return r.infoLocked(m), true
}

// Admissible reports whether id is alive with a health score at or above
// floor. The async aggregator gates buffer admission on it: health scoring
// feeds not just cohort sampling but also whether an arriving update is
// folded at all, so a member that has been repeatedly failing cannot keep
// steering the global model while its score recovers. floor <= 0 admits
// every alive member.
func (r *Registry) Admissible(id string, floor float64) bool {
	info, ok := r.Get(id)
	if !ok || info.State != StateAlive {
		return false
	}
	return floor <= 0 || info.Health >= floor
}

// SampleCohort draws a round cohort of up to ceil(k·(1+overProvision))
// alive members, health-weighted and without replacement (Efraimidis–
// Spirakis exponential keys), so chronically slow or flaky members are
// sampled less while never being starved outright. The draw consumes rng
// deterministically: the same registry state and rng state produce the same
// cohort.
func (r *Registry) SampleCohort(rng *rand.Rand, k int, overProvision float64) []Info {
	alive := r.Alive()
	if k <= 0 || k > len(alive) {
		k = len(alive)
	}
	n := k
	if overProvision > 0 {
		n = int(math.Ceil(float64(k) * (1 + overProvision)))
		if n > len(alive) {
			n = len(alive)
		}
	}
	type keyed struct {
		info Info
		key  float64
	}
	ks := make([]keyed, len(alive))
	for i, m := range alive {
		w := m.Health
		if w < healthFloor {
			w = healthFloor
		}
		// Larger key ⇔ more likely to be picked; key = u^(1/w).
		ks[i] = keyed{info: m, key: math.Pow(rng.Float64(), 1/w)}
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].key > ks[j].key })
	out := make([]Info, 0, n)
	for _, kk := range ks[:n] {
		out = append(out, kk.info)
	}
	// Return the cohort in join order so downstream iteration is stable.
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// RoundDelta returns the churn observed since the previous RoundDelta call
// and resets the window. The aggregator calls it once per round to stamp
// the round record.
func (r *Registry) RoundDelta() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out Stats
	out.add(r.window, r.winBeats, r.winRTTSum)
	out.HeartbeatRTTP99Ms = r.winRTT.p99Ms()
	r.window = Stats{}
	r.winBeats, r.winRTTSum = 0, 0
	r.winRTT.reset()
	return out
}

// Totals returns the running churn totals for the whole run.
func (r *Registry) Totals() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out Stats
	out.add(r.totals, r.totBeats, r.totRTTSum)
	out.HeartbeatRTTP99Ms = r.totRTT.p99Ms()
	return out
}

func (r *Registry) infoLocked(m *member) Info {
	return Info{
		ID: m.id, Index: m.index, State: m.state, Health: m.health,
		HeartbeatRTT: m.rttEWMA, RoundLatency: m.latEWMA,
		Rounds: m.rounds, Straggles: m.straggles, Failures: m.failures,
		Rejoins: m.rejoins, EvictedFor: m.evictedFor,
	}
}

func (r *Registry) sortedLocked() []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}
