package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for liveness tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestJoinLeaveEvictRejoin(t *testing.T) {
	r := New(Config{})
	if rejoined := r.Join("a"); rejoined {
		t.Fatal("first join reported as rejoin")
	}
	r.Join("b")
	if got := r.AliveCount(); got != 2 {
		t.Fatalf("alive = %d, want 2", got)
	}
	if !r.Evict("a", "io error") {
		t.Fatal("evicting alive member failed")
	}
	if r.Evict("a", "again") {
		t.Fatal("double eviction succeeded")
	}
	info, ok := r.Get("a")
	if !ok || info.State != StateEvicted || info.EvictedFor != "io error" {
		t.Fatalf("evicted info = %+v", info)
	}
	if rejoined := r.Join("a"); !rejoined {
		t.Fatal("rejoin not detected")
	}
	info, _ = r.Get("a")
	if info.State != StateAlive || info.Rejoins != 1 {
		t.Fatalf("rejoined info = %+v", info)
	}
	if info.Health >= 1 {
		t.Fatalf("rejoin should carry a health penalty, got %v", info.Health)
	}
	r.Leave("b")
	if got := r.AliveCount(); got != 1 {
		t.Fatalf("alive after leave = %d, want 1", got)
	}
	tot := r.Totals()
	if tot.Joins != 2 || tot.Rejoins != 1 || tot.Evictions != 1 || tot.Leaves != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestHeartbeatExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := New(Config{HeartbeatInterval: time.Second, MissedBeats: 3, Clock: clk.Now})
	r.Join("fast")
	r.Join("dead")

	// Within the window nothing expires.
	clk.Advance(2 * time.Second)
	r.Heartbeat("fast", 10*time.Millisecond)
	if dead := r.ExpireDead(); dead != nil {
		t.Fatalf("premature expiry: %v", dead)
	}
	// Past 3 missed intervals only the silent member dies.
	clk.Advance(1500 * time.Millisecond)
	dead := r.ExpireDead()
	if len(dead) != 1 || dead[0] != "dead" {
		t.Fatalf("expired %v, want [dead]", dead)
	}
	info, _ := r.Get("dead")
	if info.State != StateEvicted || info.EvictedFor != "missed heartbeats" {
		t.Fatalf("expired info = %+v", info)
	}
	if got := r.AliveCount(); got != 1 {
		t.Fatalf("alive = %d", got)
	}
	// Disabled interval never expires.
	r2 := New(Config{Clock: clk.Now})
	r2.Join("x")
	clk.Advance(time.Hour)
	if dead := r2.ExpireDead(); dead != nil {
		t.Fatalf("expiry with no interval: %v", dead)
	}
}

func TestHealthScoring(t *testing.T) {
	r := New(Config{})
	r.Join("good")
	r.Join("slow")
	for i := 0; i < 10; i++ {
		r.ObserveRound("good", 50*time.Millisecond, OutcomeOK)
		r.ObserveRound("slow", 900*time.Millisecond, OutcomeStraggler)
	}
	good, _ := r.Get("good")
	slow, _ := r.Get("slow")
	if !(good.Health > slow.Health) {
		t.Fatalf("health ordering wrong: good=%v slow=%v", good.Health, slow.Health)
	}
	if good.Health < 0.99 {
		t.Fatalf("healthy member should stay near 1, got %v", good.Health)
	}
	if slow.Health > 0.5 {
		t.Fatalf("chronic straggler should fall below 0.5, got %v", slow.Health)
	}
	if slow.Straggles != 10 {
		t.Fatalf("straggles = %d", slow.Straggles)
	}
	if slow.RoundLatency < 500*time.Millisecond {
		t.Fatalf("latency EWMA should approach 900ms, got %v", slow.RoundLatency)
	}
	if slow.Health < healthFloor {
		t.Fatalf("health below floor: %v", slow.Health)
	}
}

func TestSampleCohortOverProvisionAndBias(t *testing.T) {
	r := New(Config{})
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		r.Join(id)
	}
	// Make "f" chronically unhealthy.
	for i := 0; i < 20; i++ {
		r.ObserveRound("f", time.Second, OutcomeStraggler)
	}

	rng := rand.New(rand.NewSource(7))
	cohort := r.SampleCohort(rng, 4, 0.5)
	if len(cohort) != 6 {
		t.Fatalf("over-provisioned cohort size = %d, want 6 (ceil(4*1.5))", len(cohort))
	}
	// Determinism: same rng seed and registry state → same cohort.
	c1 := r.SampleCohort(rand.New(rand.NewSource(3)), 3, 0)
	c2 := r.SampleCohort(rand.New(rand.NewSource(3)), 3, 0)
	if len(c1) != 3 || len(c2) != 3 {
		t.Fatalf("cohort sizes: %d, %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].ID != c2[i].ID {
			t.Fatalf("sampling not deterministic: %v vs %v", c1, c2)
		}
	}
	// Bias: over many draws the unhealthy member appears much less often
	// than a healthy one.
	rng = rand.New(rand.NewSource(11))
	countF, countA := 0, 0
	for i := 0; i < 400; i++ {
		for _, m := range r.SampleCohort(rng, 3, 0) {
			switch m.ID {
			case "f":
				countF++
			case "a":
				countA++
			}
		}
	}
	if !(countF < countA/2) {
		t.Fatalf("unhealthy member not under-sampled: f=%d a=%d", countF, countA)
	}
	// k<=0 or k>alive samples everyone.
	if got := len(r.SampleCohort(rand.New(rand.NewSource(1)), 0, 0)); got != 6 {
		t.Fatalf("k=0 cohort = %d", got)
	}
}

func TestRoundDeltaWindows(t *testing.T) {
	r := New(Config{})
	r.Join("a")
	r.Join("b")
	r.Heartbeat("a", 20*time.Millisecond)
	r.Heartbeat("a", 40*time.Millisecond)
	r.ObserveRound("b", time.Second, OutcomeStraggler)
	d := r.RoundDelta()
	if d.Joins != 2 || d.Stragglers != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.HeartbeatRTTMs < 25 || d.HeartbeatRTTMs > 35 {
		t.Fatalf("mean RTT = %v, want ~30ms", d.HeartbeatRTTMs)
	}
	// The window resets; totals persist.
	d2 := r.RoundDelta()
	if d2 != (Stats{}) {
		t.Fatalf("window not reset: %+v", d2)
	}
	r.Evict("b", "x")
	d3 := r.RoundDelta()
	if d3.Evictions != 1 || d3.Joins != 0 {
		t.Fatalf("second window = %+v", d3)
	}
	tot := r.Totals()
	if tot.Joins != 2 || tot.Evictions != 1 || tot.Stragglers != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestHeartbeatRTTP99(t *testing.T) {
	r := New(Config{})
	r.Join("a")
	// 99 fast beats and one 80ms outlier: the mean stays near 1ms but the
	// p99 must surface the tail.
	for i := 0; i < 99; i++ {
		r.Heartbeat("a", time.Millisecond)
	}
	r.Heartbeat("a", 80*time.Millisecond)
	d := r.RoundDelta()
	if d.HeartbeatRTTMs > 5 {
		t.Fatalf("mean RTT = %vms, expected ~1.8ms", d.HeartbeatRTTMs)
	}
	if d.HeartbeatRTTP99Ms != 80 {
		t.Fatalf("p99 RTT = %vms, want 80ms", d.HeartbeatRTTP99Ms)
	}
	// Window sketch resets with the window; totals sketch persists.
	if d2 := r.RoundDelta(); d2.HeartbeatRTTP99Ms != 0 {
		t.Fatalf("window p99 survived reset: %v", d2.HeartbeatRTTP99Ms)
	}
	if tot := r.Totals(); tot.HeartbeatRTTP99Ms != 80 {
		t.Fatalf("totals p99 = %v, want 80", tot.HeartbeatRTTP99Ms)
	}
	// Sketch overflow keeps only the most recent beats.
	for i := 0; i < rttSketchSize; i++ {
		r.Heartbeat("a", 2*time.Millisecond)
	}
	if d := r.RoundDelta(); d.HeartbeatRTTP99Ms != 2 {
		t.Fatalf("post-overflow p99 = %v, want 2", d.HeartbeatRTTP99Ms)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New(Config{HeartbeatInterval: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			for n := 0; n < 200; n++ {
				r.Join(id)
				r.Heartbeat(id, time.Millisecond)
				r.ObserveRound(id, time.Millisecond, RoundOutcome(n%3))
				r.Alive()
				r.ExpireDead()
				r.Evict(id, "churn")
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		r.RoundDelta()
		r.SampleCohort(rand.New(rand.NewSource(int64(i))), 3, 0.5)
	}
	wg.Wait()
}
