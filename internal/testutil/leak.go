// Package testutil holds shared test-only helpers. Its flagship is the
// goroutine-leak checker applied to the networked end-to-end tests: servers,
// relays, and clients all spawn connection goroutines, and a test that
// passes while stranding one turns every later test in the package into a
// suspect when the strand finally misbehaves.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T the leak checker needs; taking the
// interface keeps this package importable from helpers that only have a
// testing.TB.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// VerifyNoLeaks snapshots the live goroutines and registers a cleanup that
// fails the test if goroutines running photon code outlive it. Call it
// FIRST in a test, before any helper that spawns servers or clients, so the
// snapshot is taken ahead of the machinery under test.
//
// Teardown is asynchronous everywhere (closed connections unwind reader
// loops, cancelled contexts unwind accept loops), so the cleanup polls with
// a grace period instead of checking once: a goroutine is only a leak if it
// is still alive after retries.
//
// System goroutines are allowlisted: the runtime's own workers, testing
// harness goroutines, and the package-global tensor worker pool, which is
// created on first parallel dispatch and intentionally lives for the
// process (see tensor.ensurePool).
func VerifyNoLeaks(t TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedGoroutines(before)
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, stack := range leaked {
			t.Errorf("leaked goroutine:\n%s", stack)
		}
	})
}

// goroutineIDs returns the IDs of all currently live goroutines.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range goroutineStacks() {
		ids[goroutineID(g)] = true
	}
	return ids
}

// leakedGoroutines returns the stacks of goroutines that are not in the
// before set, are running photon code, and are not allowlisted.
func leakedGoroutines(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineStacks() {
		if before[goroutineID(g)] {
			continue
		}
		if allowlisted(g) {
			continue
		}
		if strings.Contains(g, "photon/internal/") {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// goroutineStacks captures all goroutine stacks and splits them into
// per-goroutine chunks.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var stacks []string
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		if strings.HasPrefix(chunk, "goroutine ") {
			stacks = append(stacks, chunk)
		}
	}
	return stacks
}

// goroutineID extracts the numeric ID from a stack chunk's header line
// ("goroutine 42 [running]: ...").
func goroutineID(stack string) string {
	rest := strings.TrimPrefix(stack, "goroutine ")
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return fmt.Sprintf("unparsed:%.40s", stack)
}

// allowlisted reports whether a goroutine is infrastructure that may
// legitimately outlive a test.
func allowlisted(stack string) bool {
	for _, marker := range []string{
		// The package-global tensor worker pool: created on first parallel
		// dispatch, lives for the process by design.
		"photon/internal/tensor.ensurePool",
		// Testing harness machinery.
		"testing.tRunner",
		"testing.(*T).Run",
		"testing.runTests",
		// Runtime and profiling system goroutines.
		"runtime.goexit0",
		"runtime/pprof.",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.runfinq",
		"os/signal.signal_recv",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
