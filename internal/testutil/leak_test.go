package testutil

import (
	"strings"
	"sync"
	"testing"
)

// fakeTB records Errorf calls and collects cleanups so the leak checker can
// be exercised without failing the real test.
type fakeTB struct {
	mu       sync.Mutex
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errors = append(f.errors, format)
}

func (f *fakeTB) Cleanup(fn func()) {
	f.cleanups = append(f.cleanups, fn)
}

func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

// blockedWorker parks until released; its stack carries photon frames, so
// the checker must see it as a leak while it lives.
func blockedWorker(release <-chan struct{}) {
	<-release
}

func TestLeakCheckerDetectsStrandedGoroutine(t *testing.T) {
	var fake fakeTB
	VerifyNoLeaks(&fake)

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		blockedWorker(release)
	}()
	<-started

	fake.runCleanups() // polls for the grace period, then reports
	close(release)

	if len(fake.errors) == 0 {
		t.Fatal("leak checker did not report a deliberately stranded goroutine")
	}
	if !strings.Contains(fake.errors[0], "leaked goroutine") {
		t.Fatalf("unexpected error format %q", fake.errors[0])
	}
}

func TestLeakCheckerPassesWhenGoroutinesJoin(t *testing.T) {
	var fake fakeTB
	VerifyNoLeaks(&fake)

	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done

	fake.runCleanups()
	if len(fake.errors) != 0 {
		t.Fatalf("leak checker reported %d false positives: %v", len(fake.errors), fake.errors)
	}
}
