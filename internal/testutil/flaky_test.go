package testutil

import (
	"net"
	"testing"

	"photon/internal/ckpt"
	"photon/internal/link"
)

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	dialed, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	if srv.err != nil {
		dialed.Close()
		t.Fatal(srv.err)
	}
	return dialed, srv.c
}

// TestFlakyConnSeversOnArmedSend arms "conn:send": the next framed write
// must sever the link, and the peer must observe an ordinary connection
// loss — exactly what a crashing process looks like on the wire.
func TestFlakyConnSeversOnArmedSend(t *testing.T) {
	raw, peerRaw := tcpPair(t)
	fp := &ckpt.Failpoint{}
	conn := link.NewConn(&FlakyConn{Conn: raw, Fail: fp})
	peer := link.NewConn(peerRaw)
	defer conn.Close()
	defer peer.Close()

	// Unarmed, the wrapper is transparent: a message passes through.
	if err := conn.Send(&link.Message{Type: link.MsgJoin, ClientID: "a"}); err != nil {
		t.Fatalf("unarmed send: %v", err)
	}
	if msg, err := peer.Recv(); err != nil || msg.ClientID != "a" {
		t.Fatalf("unarmed recv: %v %v", msg, err)
	}

	fp.Arm("conn:send")
	if err := conn.Send(&link.Message{Type: link.MsgJoin, ClientID: "b"}); err == nil {
		t.Fatal("armed send succeeded; want a severed link")
	}
	if !fp.Fired() {
		t.Fatal("failpoint never fired")
	}
	if _, err := peer.Recv(); err == nil {
		t.Fatal("peer still readable after the link was severed")
	}
}

// TestFlakyConnSeversOnArmedRecv arms "conn:recv" on the reading side.
func TestFlakyConnSeversOnArmedRecv(t *testing.T) {
	raw, peerRaw := tcpPair(t)
	fp := &ckpt.Failpoint{}
	conn := link.NewConn(&FlakyConn{Conn: raw, Fail: fp})
	peer := link.NewConn(peerRaw)
	defer conn.Close()
	defer peer.Close()

	if err := peer.Send(&link.Message{Type: link.MsgJoin, ClientID: "a"}); err != nil {
		t.Fatal(err)
	}
	fp.Arm("conn:recv")
	if _, err := conn.Recv(); err == nil {
		t.Fatal("armed recv succeeded; want a severed link")
	}
	if !fp.Fired() {
		t.Fatal("failpoint never fired")
	}
}

// TestFlakyConnZeroFailpoint verifies the documented zero-pointer mode: a
// nil failpoint makes the wrapper fully transparent in both directions.
func TestFlakyConnZeroFailpoint(t *testing.T) {
	raw, peerRaw := tcpPair(t)
	conn := link.NewConn(&FlakyConn{Conn: raw})
	peer := link.NewConn(peerRaw)
	defer conn.Close()
	defer peer.Close()

	if err := conn.Send(&link.Message{Type: link.MsgJoin, ClientID: "x"}); err != nil {
		t.Fatal(err)
	}
	if msg, err := peer.Recv(); err != nil || msg.ClientID != "x" {
		t.Fatalf("recv through transparent wrapper: %v %v", msg, err)
	}
}
