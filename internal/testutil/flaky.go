package testutil

import (
	"net"

	"photon/internal/ckpt"
)

// FlakyConn wraps a net.Conn with a ckpt.Failpoint so tests can sever a
// link at a chosen protocol moment instead of at a random scheduler point.
// Arm the shared failpoint with site "conn:send" or "conn:recv"; the first
// matching I/O call closes the connection and reports a failpoint error,
// which the link layer surfaces as an ordinary connection loss. Wrap the
// raw conn BEFORE handing it to link.NewConn so framed writes and reads
// both pass through the hook.
//
// The zero failpoint pointer is legal (the wrapper is then transparent),
// so a single test helper can build flaky and solid topologies alike.
type FlakyConn struct {
	net.Conn
	Fail *ckpt.Failpoint
}

// Read implements net.Conn, severing the link when "conn:recv" is armed.
func (f *FlakyConn) Read(p []byte) (int, error) {
	if f.Fail.Fire("conn:recv") {
		f.Conn.Close()
		return 0, net.ErrClosed
	}
	return f.Conn.Read(p)
}

// Write implements net.Conn, severing the link when "conn:send" is armed.
func (f *FlakyConn) Write(p []byte) (int, error) {
	if f.Fail.Fire("conn:send") {
		f.Conn.Close()
		return 0, net.ErrClosed
	}
	return f.Conn.Write(p)
}
