package serve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"photon/internal/eval"
	"photon/internal/nn"
)

func testModel(seed int64) *nn.Model {
	cfg := nn.Config{
		VocabSize: 61,
		Dim:       24,
		Heads:     3,
		Blocks:    2,
		ExpRatio:  2,
		SeqLen:    16,
	}
	return nn.NewModel(cfg, rand.New(rand.NewSource(seed)))
}

// TestEngineGenerateMatchesInProcess pins the serving path against the local
// generation path: a request served alone must reproduce Model.GenerateOpts
// token for token, both greedy and sampled (same seed).
func TestEngineGenerateMatchesInProcess(t *testing.T) {
	m := testModel(1)
	prompt := []int{3, 7, 11}
	opts := nn.SampleOpts{Temperature: 0.8, TopK: 12}
	// In-process references first: the engine owns the model once started.
	wantGreedy := m.Generate(nil, prompt, 10, 0)
	wantSampled := m.GenerateOpts(rand.New(rand.NewSource(99)), prompt, 10, opts)

	e := NewEngine(m, Config{MaxBatch: 1, MaxSeq: 64})
	defer e.Close()

	res := e.Do(Request{Prompt: prompt, MaxNew: 10})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Tokens) != len(wantGreedy) {
		t.Fatalf("greedy: got %d tokens, want %d", len(res.Tokens), len(wantGreedy))
	}
	for i := range res.Tokens {
		if res.Tokens[i] != wantGreedy[i] {
			t.Fatalf("greedy token %d: served %d, in-process %d", i, res.Tokens[i], wantGreedy[i])
		}
	}

	res = e.Do(Request{Prompt: prompt, MaxNew: 10, Opts: opts, Seed: 99})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i := range res.Tokens {
		if res.Tokens[i] != wantSampled[i] {
			t.Fatalf("sampled token %d: served %d, in-process %d", i, res.Tokens[i], wantSampled[i])
		}
	}
}

// TestEngineScoreMatchesEval is the scoring half of the serving contract:
// log p(cont | prompt) through the engine must match eval.ContinuationLogProb
// (which recomputes the full sequence through the training forward) within
// the decode-vs-training float tolerance.
func TestEngineScoreMatchesEval(t *testing.T) {
	m := testModel(2)
	rng := rand.New(rand.NewSource(5))
	prompt := make([]int, 9)
	cont := make([]int, 5)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Cfg.VocabSize)
	}
	for i := range cont {
		cont[i] = rng.Intn(m.Cfg.VocabSize)
	}
	want := eval.ContinuationLogProb(m, prompt, cont)

	e := NewEngine(m, Config{MaxBatch: 2, MaxSeq: 64})
	defer e.Close()
	got, err := e.Score(prompt, cont)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("served score %g, in-process %g", got, want)
	}
}

// TestEngineContinuousBatching is the mid-batch scheduling pin: with a
// 2-slot batch occupied by one long request, short requests must rotate
// through the second slot and complete while the long one is still decoding.
func TestEngineContinuousBatching(t *testing.T) {
	m := testModel(3)
	e := NewEngine(m, Config{MaxBatch: 2, MaxSeq: 128, Queue: 8})
	defer e.Close()

	order := make(chan string, 4)
	long, err := e.Submit(Request{Prompt: []int{1, 2}, MaxNew: 90})
	if err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a moment to admit the long request so the shorts
	// contend for the one remaining slot.
	time.Sleep(10 * time.Millisecond)
	shorts := make([]<-chan Result, 3)
	for i := range shorts {
		ch, err := e.Submit(Request{Prompt: []int{5}, MaxNew: 3})
		if err != nil {
			t.Fatal(err)
		}
		shorts[i] = ch
	}
	go func() {
		r := <-long
		if r.Err != nil {
			t.Errorf("long request failed: %v", r.Err)
		}
		if len(r.Tokens) != 90 {
			t.Errorf("long request returned %d tokens", len(r.Tokens))
		}
		order <- "long"
	}()
	go func() {
		for _, ch := range shorts {
			r := <-ch
			if r.Err != nil {
				t.Errorf("short request failed: %v", r.Err)
			}
			if len(r.Tokens) != 3 {
				t.Errorf("short request returned %d tokens", len(r.Tokens))
			}
		}
		order <- "shorts"
	}()
	first := <-order
	second := <-order
	if first != "shorts" || second != "long" {
		t.Fatalf("completion order %s, %s: short requests should finish mid-batch before the long one", first, second)
	}
	st := e.Stats()
	if st.Completed != 4 {
		t.Fatalf("stats report %d completed, want 4", st.Completed)
	}
	if st.TokensOut != 90+3*3 {
		t.Fatalf("stats report %d tokens out, want 99", st.TokensOut)
	}
}

// TestEngineQueueFull pins admission backpressure: with the single batch
// slot busy and the queue at capacity, the next Submit fails fast.
func TestEngineQueueFull(t *testing.T) {
	m := testModel(4)
	e := NewEngine(m, Config{MaxBatch: 1, MaxSeq: 4096, Queue: 1})
	defer e.Close()

	// Long enough (thousands of decode steps) to still be running while the
	// assertions below execute; Close reaps it at test end.
	busy, err := e.Submit(Request{Prompt: []int{1}, MaxNew: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the busy request to be admitted (leaving the queue).
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Submit(Request{Prompt: []int{2}, MaxNew: 5}); err != nil {
		t.Fatalf("queueing one request should succeed: %v", err)
	}
	if _, err := e.Submit(Request{Prompt: []int{3}, MaxNew: 5}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	_ = busy
}

// TestEngineDeadline pins both deadline paths: a request expired before
// admission fails outright, and one expiring mid-generation retires with its
// partial output and ErrDeadline.
func TestEngineDeadline(t *testing.T) {
	m := testModel(5)
	e := NewEngine(m, Config{MaxBatch: 2, MaxSeq: 4096})
	defer e.Close()

	res := e.Do(Request{Prompt: []int{1}, MaxNew: 5, Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("pre-expired request returned %v, want ErrDeadline", res.Err)
	}
	if len(res.Tokens) != 0 {
		t.Fatalf("pre-expired request produced %d tokens", len(res.Tokens))
	}

	res = e.Do(Request{Prompt: []int{1}, MaxNew: 4000, Deadline: time.Now().Add(5 * time.Millisecond)})
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("mid-flight expiry returned %v, want ErrDeadline", res.Err)
	}
	if len(res.Tokens) == 0 || len(res.Tokens) >= 4000 {
		t.Fatalf("expired generation returned %d tokens, want partial output", len(res.Tokens))
	}
	if e.Stats().Expired == 0 {
		t.Fatal("stats never counted an expired request")
	}
}

// TestEngineRejects pins the validation errors.
func TestEngineRejects(t *testing.T) {
	m := testModel(6)
	e := NewEngine(m, Config{MaxBatch: 1, MaxSeq: 8})
	defer e.Close()

	if res := e.Do(Request{Prompt: []int{1}, MaxNew: 0}); res.Err == nil {
		t.Fatal("MaxNew=0 accepted")
	}
	if res := e.Do(Request{Prompt: []int{1}, MaxNew: 8}); !errors.Is(res.Err, ErrTooLong) {
		t.Fatalf("MaxNew=MaxSeq returned %v, want ErrTooLong", res.Err)
	}
	long := make([]int, 12)
	if res := e.Do(Request{Prompt: long, Cont: long}); !errors.Is(res.Err, ErrTooLong) {
		t.Fatalf("oversized scoring request returned %v, want ErrTooLong", res.Err)
	}
}

// TestEngineClose pins shutdown: queued work fails with ErrClosed and later
// submissions are rejected without blocking.
func TestEngineClose(t *testing.T) {
	m := testModel(7)
	e := NewEngine(m, Config{MaxBatch: 1, MaxSeq: 256, Queue: 4})
	ch, err := e.Submit(Request{Prompt: []int{1}, MaxNew: 200})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if res := <-ch; !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("in-flight request got %v, want ErrClosed", res.Err)
	}
	if _, err := e.Submit(Request{Prompt: []int{1}, MaxNew: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit got %v, want ErrClosed", err)
	}
}

// TestEngineEvents checks the telemetry stream carries completions with a
// coherent snapshot.
func TestEngineEvents(t *testing.T) {
	m := testModel(8)
	e := NewEngine(m, Config{MaxBatch: 2, MaxSeq: 64})
	defer e.Close()

	if res := e.Do(Request{Prompt: []int{2, 3}, MaxNew: 4}); res.Err != nil {
		t.Fatal(res.Err)
	}
	select {
	case ev := <-e.Events():
		if ev.Kind != EventCompleted {
			t.Fatalf("event kind %v, want EventCompleted", ev.Kind)
		}
		if ev.Tokens != 4 {
			t.Fatalf("event reports %d tokens, want 4", ev.Tokens)
		}
		if ev.Duration <= 0 || ev.Stats.Completed < 1 || ev.Stats.P50 <= 0 {
			t.Fatalf("incoherent event snapshot: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event delivered")
	}
}
