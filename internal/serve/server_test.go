package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"photon/internal/eval"
	"photon/internal/link"
	"photon/internal/nn"
	"photon/internal/testutil"
)

// startServer spins up an engine and TCP server for tests, returning a
// connected client and a shutdown func.
func startServer(t *testing.T, m *nn.Model, cfg Config) (*Client, func()) {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(m, cfg)
	srv := NewServer(eng, l)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()
	client, err := DialServer(context.Background(), srv.Addr())
	if err != nil {
		cancel()
		eng.Close()
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		cancel()
		<-done
		eng.Close()
	}
}

// TestServerEndToEnd drives generation and scoring through the real wire
// path — TCP, frames, engine, back — and checks both against in-process
// references computed before the engine took the model over.
func TestServerEndToEnd(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := testModel(11)
	prompt := []int{4, 9, 2, 33}
	cont := []int{7, 1, 15}
	wantTokens := m.GenerateOpts(rand.New(rand.NewSource(21)), prompt, 8, nn.SampleOpts{Temperature: 0.7, TopK: 20})
	wantScore := eval.ContinuationLogProb(m, prompt, cont)

	client, shutdown := startServer(t, m, Config{MaxBatch: 4, MaxSeq: 64})
	defer shutdown()

	got, err := client.Generate(prompt, 8, GenOpts{Sample: nn.SampleOpts{Temperature: 0.7, TopK: 20}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantTokens) {
		t.Fatalf("got %d tokens, want %d", len(got), len(wantTokens))
	}
	for i := range got {
		if got[i] != wantTokens[i] {
			t.Fatalf("token %d: wire %d, in-process %d", i, got[i], wantTokens[i])
		}
	}

	score, err := client.Score(prompt, cont)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-wantScore) > 1e-4 {
		t.Fatalf("wire score %g, in-process %g", score, wantScore)
	}
}

// TestServerConcurrentClients pipelines many requests from several
// goroutines over one connection, exercising the continuous batch under
// real concurrency: every request must come back correct and the engine must
// report more than one sequence resident at some point.
func TestServerConcurrentClients(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := testModel(12)
	client, shutdown := startServer(t, m, Config{MaxBatch: 4, MaxSeq: 64, Queue: 32})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tokens, err := client.Generate([]int{g + 1}, 12, GenOpts{Seed: int64(g)})
			if err != nil {
				errs <- err
				return
			}
			if len(tokens) != 12 {
				errs <- errTokens(len(tokens))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errTokens int

func (e errTokens) Error() string { return "wrong token count" }

// TestServerErrorPropagation checks a rejected request surfaces its server-
// side error text to the caller instead of hanging or tearing the
// connection down.
func TestServerErrorPropagation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := testModel(13)
	client, shutdown := startServer(t, m, Config{MaxBatch: 1, MaxSeq: 8})
	defer shutdown()

	if _, err := client.Generate([]int{1}, 0, GenOpts{}); err == nil {
		t.Fatal("MaxNew=0 should fail")
	}
	// Connection must remain usable after the error.
	if _, err := client.Generate([]int{1}, 3, GenOpts{}); err != nil {
		t.Fatalf("connection unusable after request error: %v", err)
	}
}

// TestServerDeadlinePropagation checks the relative deadline crosses the
// wire: a tiny budget on a long request returns ErrDeadline text (partial
// results are a server-side concept; the wire marks the request failed).
func TestServerDeadlinePropagation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := testModel(14)
	client, shutdown := startServer(t, m, Config{MaxBatch: 1, MaxSeq: 4096})
	defer shutdown()

	_, err := client.Generate([]int{1}, 4000, GenOpts{Deadline: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("deadline-bounded long request should fail")
	}
}
