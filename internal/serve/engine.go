// Package serve is photon's inference side: a KV-cached continuous-batching
// engine over nn.Model's incremental decode path, plus a link-protocol
// server and client so evaluation can run against the real serving stack
// instead of in-process model calls.
//
// The engine owns the model exclusively. One scheduler goroutine runs a
// decode loop that admits queued requests into free batch slots, prefills
// their prompts in the same forward that decodes the running sequences
// (mixed ragged batches are what nn.Model.Decode is built for), samples one
// token per running sequence per step, and retires sequences the moment they
// finish — a new request takes over the freed slot on the very next step
// rather than waiting for the whole batch to drain. That is the continuous
// batching of Orca/vLLM, scaled down to this codebase's single-process
// model.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"photon/internal/nn"
	"photon/internal/obsv"
	"photon/internal/tensor"
)

// Engine errors.
var (
	// ErrQueueFull reports a Submit rejected because the admission queue is
	// at capacity (backpressure; the caller should retry or shed load).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed reports a request submitted to (or stranded in) a closed
	// engine.
	ErrClosed = errors.New("serve: engine closed")
	// ErrDeadline reports a request whose deadline expired before it
	// finished; generation results carry the tokens produced so far.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrTooLong reports a request that cannot fit the per-sequence cache.
	ErrTooLong = errors.New("serve: request exceeds max sequence length")
)

// Config sizes the engine.
type Config struct {
	// MaxBatch is the maximum number of sequences decoded concurrently
	// (default 8). Also the size of the preallocated KV-cache slot pool.
	MaxBatch int
	// MaxSeq is the per-sequence cache capacity in tokens: prompt plus
	// generated tokens, or the full scored sequence (default 4× the
	// model's trained SeqLen — ALiBi extrapolates past training length).
	MaxSeq int
	// Queue is the admission queue depth (default 64). Submissions beyond
	// it fail fast with ErrQueueFull.
	Queue int
}

func (c Config) withDefaults(m *nn.Model) Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxSeq <= 0 {
		c.MaxSeq = 4 * m.Cfg.SeqLen
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	return c
}

// Request is one unit of serving work. Leaving Cont empty makes it a
// generation request (continue Prompt by MaxNew sampled tokens); a non-empty
// Cont makes it a scoring request for log p(Cont | Prompt), and the sampling
// fields are ignored.
type Request struct {
	Prompt []int
	MaxNew int
	Opts   nn.SampleOpts
	// Seed seeds the request's private sampling stream, so a request
	// replayed with the same seed reproduces its tokens regardless of what
	// else is in the batch.
	Seed int64
	// Cont, when non-empty, switches the request to scoring mode.
	Cont []int
	// Deadline, when non-zero, bounds the request's total time in the
	// engine. An expired generation retires with its partial output and
	// ErrDeadline.
	Deadline time.Time
}

// Result is a finished request.
type Result struct {
	// Tokens holds the sampled continuation for generation requests.
	Tokens []int
	// LogProb holds Σ log p(cont_t | prompt, cont_<t) for scoring requests.
	LogProb float64
	Err     error
	// Queued is the time spent waiting for a batch slot; Duration the total
	// submit-to-completion time.
	Queued   time.Duration
	Duration time.Duration
}

// EventKind classifies telemetry events.
type EventKind int

// Event kinds.
const (
	// EventCompleted is a successfully finished request.
	EventCompleted EventKind = iota
	// EventExpired is a request retired by its deadline.
	EventExpired
)

// Event is one request's completion record with an engine snapshot attached,
// emitted on the Events channel (best-effort: slow consumers drop events,
// never the serving path).
type Event struct {
	Kind     EventKind
	Tokens   int // tokens generated (or scored)
	Queued   time.Duration
	Duration time.Duration
	Stats    Stats
}

// Stats is a point-in-time engine snapshot.
type Stats struct {
	// QueueDepth is the number of requests waiting for a slot; Active the
	// number of sequences in the current decode batch.
	QueueDepth int
	Active     int
	// Completed and Expired count retired requests.
	Completed int64
	Expired   int64
	// TokensOut counts sampled tokens across all generation requests.
	TokensOut int64
	// TokensPerSec is TokensOut over the engine's uptime.
	TokensPerSec float64
	// P50 and P99 are request-latency percentiles over a sliding window of
	// recent completions.
	P50, P99 time.Duration
}

// latWindow bounds the latency ring the percentiles are computed over.
const latWindow = 256

type pending struct {
	req      Request
	res      chan Result
	enqueued time.Time
}

// seqSlot is one active sequence in the batch.
type seqSlot struct {
	p       *pending
	st      *nn.DecodeState
	rng     *rand.Rand
	sampler nn.Sampler
	out     []int
	tok     [1]int // next token to feed in steady-state decode
	started time.Time

	score     bool
	seq       []int // scoring: prompt‖cont
	promptLen int
	prompt    []int // generation: truncated prompt (or the seed token)
}

// Engine is the continuous-batching scheduler. Construct with NewEngine,
// submit with Submit/Do, stop with Close. The model passed to NewEngine must
// not be used elsewhere until Close returns: the scheduler goroutine owns it.
type Engine struct {
	m   *nn.Model
	cfg Config

	reqs   chan *pending
	quit   chan struct{}
	done   chan struct{}
	events chan Event

	mu        sync.Mutex
	started   time.Time
	completed int64
	expired   int64
	tokensOut int64
	active    int
	lat       []time.Duration // latency ring
	latPos    int
	closed    bool

	// step scratch, owned by the scheduler goroutine
	states []*nn.DecodeState
	toks   [][]int
	rows   []int

	// process-wide scrape instruments (obsv.Default), cached at construction
	// so the hot path never touches the registry lock. All updates are
	// single atomic ops — the decode loop stays allocation-free.
	insQueue     *obsv.Gauge
	insInflight  *obsv.Gauge
	insLatency   *obsv.Histogram
	insCompleted *obsv.Counter
	insExpired   *obsv.Counter
	insTokens    *obsv.Counter
}

// NewEngine starts an engine over m. The engine takes exclusive ownership of
// the model until Close.
func NewEngine(m *nn.Model, cfg Config) *Engine {
	cfg = cfg.withDefaults(m)
	e := &Engine{
		m:       m,
		cfg:     cfg,
		reqs:    make(chan *pending, cfg.Queue),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		events:  make(chan Event, 128),
		started: time.Now(),

		insQueue:     obsv.Default.Gauge("photon_serve_queue_depth", "Requests waiting in the admission queue."),
		insInflight:  obsv.Default.Gauge("photon_serve_inflight_sequences", "Sequences currently decoding in the batch."),
		insLatency:   obsv.Default.Histogram("photon_serve_request_seconds", "End-to-end request latency (queue + decode).", nil),
		insCompleted: obsv.Default.Counter("photon_serve_completed_total", "Requests completed successfully."),
		insExpired:   obsv.Default.Counter("photon_serve_expired_total", "Requests expired at their deadline."),
		insTokens:    obsv.Default.Counter("photon_serve_tokens_total", "Tokens sampled across all requests."),
	}
	go e.loop()
	return e
}

// Events returns the telemetry stream. Events are dropped, not queued, when
// the consumer lags; the channel closes when the engine does.
func (e *Engine) Events() <-chan Event { return e.events }

// ResolvedConfig returns the engine's configuration with defaults applied.
func (e *Engine) ResolvedConfig() Config { return e.cfg }

// Submit enqueues a request and returns the channel its Result will arrive
// on. It fails fast with ErrQueueFull or ErrClosed instead of blocking the
// caller.
func (e *Engine) Submit(req Request) (<-chan Result, error) {
	p := &pending{req: req, res: make(chan Result, 1), enqueued: time.Now()}
	// The closed check and the enqueue share the mutex with Close, so a
	// request either observes the closed flag or lands in the queue before
	// Close's shutdown drain — never in between, where it would strand.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	select {
	case e.reqs <- p:
		e.insQueue.Set(float64(len(e.reqs)))
		return p.res, nil
	default:
		return nil, ErrQueueFull
	}
}

// Do submits and blocks for the result.
func (e *Engine) Do(req Request) Result {
	ch, err := e.Submit(req)
	if err != nil {
		return Result{Err: err}
	}
	return <-ch
}

// Score returns log p(cont | prompt) in nats through the serving path. It
// satisfies eval's Scorer shape, so a local engine can stand in for a remote
// client when wiring evaluation through the server stack.
func (e *Engine) Score(prompt, cont []int) (float64, error) {
	res := e.Do(Request{Prompt: prompt, Cont: cont})
	return res.LogProb, res.Err
}

// Close stops the scheduler, failing queued and in-flight requests with
// ErrClosed, and blocks until the loop exits (after which the model may be
// used directly again).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.quit)
	<-e.done
}

// Stats returns a snapshot of the engine counters and latency percentiles.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		QueueDepth: len(e.reqs),
		Active:     e.active,
		Completed:  e.completed,
		Expired:    e.expired,
		TokensOut:  e.tokensOut,
	}
	if up := time.Since(e.started).Seconds(); up > 0 {
		s.TokensPerSec = float64(e.tokensOut) / up
	}
	if n := len(e.lat); n > 0 {
		tmp := make([]time.Duration, n)
		copy(tmp, e.lat)
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		s.P50 = tmp[n/2]
		s.P99 = tmp[(n*99)/100]
	}
	return s
}

// loop is the scheduler: admit → step → retire, forever.
func (e *Engine) loop() {
	defer close(e.done)
	defer close(e.events)

	free := make([]*nn.DecodeState, e.cfg.MaxBatch)
	for i := range free {
		free[i] = e.m.NewDecodeState(e.cfg.MaxSeq)
	}
	var active []*seqSlot

	fail := func(p *pending, err error) {
		now := time.Now()
		p.res <- Result{Err: err, Queued: now.Sub(p.enqueued), Duration: now.Sub(p.enqueued)}
	}

	for {
		// Admit until the batch is full. Block only when idle; a running
		// batch polls so decoding never stalls on an empty queue.
		for len(active) < e.cfg.MaxBatch {
			var p *pending
			if len(active) == 0 {
				select {
				case <-e.quit:
					e.drainAndFail(active, fail)
					return
				case p = <-e.reqs:
				}
			} else {
				select {
				case p = <-e.reqs:
				default:
				}
				if p == nil {
					break
				}
			}
			if s := e.admit(p, &free, fail); s != nil {
				active = append(active, s)
			}
		}
		select {
		case <-e.quit:
			e.drainAndFail(active, fail)
			return
		default:
		}

		active = e.step(active, &free)

		e.mu.Lock()
		e.active = len(active)
		e.mu.Unlock()
		e.insInflight.Set(float64(len(active)))
		e.insQueue.Set(float64(len(e.reqs)))
	}
}

// drainAndFail rejects everything queued or in flight on shutdown.
func (e *Engine) drainAndFail(active []*seqSlot, fail func(*pending, error)) {
	for _, s := range active {
		fail(s.p, ErrClosed)
	}
	for {
		select {
		case p := <-e.reqs:
			fail(p, ErrClosed)
		default:
			return
		}
	}
}

// admit validates a request and binds it to a free KV slot. Returns nil when
// the request was rejected (its result is already delivered).
func (e *Engine) admit(p *pending, free *[]*nn.DecodeState, fail func(*pending, error)) *seqSlot {
	req := &p.req
	if !req.Deadline.IsZero() && time.Now().After(req.Deadline) {
		e.retireCounters(0, true)
		fail(p, ErrDeadline)
		return nil
	}
	s := &seqSlot{p: p, started: time.Now()}
	if len(req.Cont) > 0 {
		s.score = true
		s.promptLen = len(req.Prompt)
		if s.promptLen == 0 {
			// Scoring needs at least one conditioning token; reuse the
			// empty-prompt convention of Generate and seed token 0.
			s.seq = append(s.seq, 0)
			s.promptLen = 1
		} else {
			s.seq = append(s.seq, req.Prompt...)
		}
		s.seq = append(s.seq, req.Cont...)
		// The last token is never fed: its logits would predict beyond the
		// continuation.
		if len(s.seq)-1 > e.cfg.MaxSeq {
			fail(p, fmt.Errorf("%w: %d tokens > %d", ErrTooLong, len(s.seq), e.cfg.MaxSeq))
			return nil
		}
	} else {
		if req.MaxNew <= 0 {
			fail(p, fmt.Errorf("serve: MaxNew must be positive, got %d", req.MaxNew))
			return nil
		}
		if req.MaxNew >= e.cfg.MaxSeq {
			fail(p, fmt.Errorf("%w: MaxNew %d with MaxSeq %d leaves no prompt room", ErrTooLong, req.MaxNew, e.cfg.MaxSeq))
			return nil
		}
		prompt := req.Prompt
		// Mirror Model.GenerateOpts: truncate to the trained context, then
		// clip to the cache budget left after MaxNew tokens.
		if len(prompt) > e.m.Cfg.SeqLen {
			prompt = prompt[len(prompt)-e.m.Cfg.SeqLen:]
		}
		if keep := e.cfg.MaxSeq - req.MaxNew; len(prompt) > keep {
			prompt = prompt[len(prompt)-keep:]
		}
		if len(prompt) == 0 {
			s.prompt = []int{0} // seed token, not part of the output
		} else {
			s.prompt = append(s.prompt, prompt...)
		}
		s.rng = rand.New(rand.NewSource(req.Seed))
		s.out = make([]int, 0, req.MaxNew)
	}
	st := (*free)[len(*free)-1]
	*free = (*free)[:len(*free)-1]
	st.Reset()
	s.st = st
	return s
}

// step runs one mixed prefill/decode forward over the active batch, samples
// or scores, and retires finished sequences (returning their slots to free).
// This is the serving hot path: per-token work reuses engine-owned scratch
// (states/toks/rows reset to [:0] each step) so a steady-state decode step
// allocates nothing.
//
//photon:hotpath
func (e *Engine) step(active []*seqSlot, free *[]*nn.DecodeState) []*seqSlot {
	if len(active) == 0 {
		return active
	}
	e.states = e.states[:0]
	e.toks = e.toks[:0]
	for _, s := range active {
		e.states = append(e.states, s.st) //photon:nolint hotpath-alloc -- engine scratch, reset to [:0] per step
		e.toks = append(e.toks, s.feed()) //photon:nolint hotpath-alloc -- engine scratch, reset to [:0] per step
	}
	h := e.m.Decode(e.states, e.toks)

	// Gather exactly the logit rows each sequence needs.
	e.rows = e.rows[:0]
	off := 0
	for i, s := range active {
		n := len(e.toks[i])
		if s.score {
			// Rows for positions promptLen-1 … len(seq)-2: each predicts
			// the next continuation token.
			for r := s.promptLen - 1; r < n; r++ {
				e.rows = append(e.rows, off+r) //photon:nolint hotpath-alloc -- engine scratch, reset to [:0] per step
			}
		} else {
			e.rows = append(e.rows, off+n-1) //photon:nolint hotpath-alloc -- engine scratch, reset to [:0] per step
		}
		off += n
	}
	logits := e.m.DecodeLogits(h, e.rows)

	now := time.Now()
	out := active[:0]
	row := 0
	sampled := int64(0)
	for _, s := range active {
		if s.score {
			var lp float64
			for j := 0; j < len(s.seq)-s.promptLen; j++ {
				r := logits.Row(row)
				lp += float64(r[s.seq[s.promptLen+j]]) - tensor.LogSumExpRow(r)
				row++
			}
			e.retire(s, free, Result{LogProb: lp, Tokens: nil}, false, now)
			continue
		}
		next := s.sampler.Sample(s.rng, logits.Row(row), s.p.req.Opts)
		row++
		sampled++
		s.out = append(s.out, next) //photon:nolint hotpath-alloc -- capacity preallocated to MaxNew at admit
		s.tok[0] = next
		switch {
		case len(s.out) >= s.p.req.MaxNew:
			e.retire(s, free, Result{Tokens: s.out}, false, now)
		case !s.p.req.Deadline.IsZero() && now.After(s.p.req.Deadline):
			e.retire(s, free, Result{Tokens: s.out, Err: ErrDeadline}, true, now)
		default:
			out = append(out, s) //photon:nolint hotpath-alloc -- filters in place over active's backing array
		}
	}
	e.mu.Lock()
	e.tokensOut += sampled
	e.mu.Unlock()
	e.insTokens.Add(sampled)
	return out
}

// feed returns the tokens this sequence contributes to the next forward: its
// whole prompt (or scored prefix) on the first step, the last sampled token
// afterwards.
//
//photon:hotpath
func (s *seqSlot) feed() []int {
	if s.st.Len() == 0 {
		if s.score {
			return s.seq[:len(s.seq)-1]
		}
		return s.prompt
	}
	return s.tok[:]
}

// retire completes a sequence: result out, slot back in the pool, telemetry.
// Runs once per sequence, not per token, so it may allocate (the Event copy,
// the latency ring growth before the window fills).
//
//photon:allocok
func (e *Engine) retire(s *seqSlot, free *[]*nn.DecodeState, res Result, expired bool, now time.Time) {
	res.Queued = s.started.Sub(s.p.enqueued)
	res.Duration = now.Sub(s.p.enqueued)
	*free = append(*free, s.st)
	s.p.res <- res

	e.retireCounters(res.Duration, expired)
	kind := EventCompleted
	if expired {
		kind = EventExpired
	}
	ev := Event{
		Kind:     kind,
		Tokens:   len(res.Tokens),
		Queued:   res.Queued,
		Duration: res.Duration,
		Stats:    e.Stats(),
	}
	select {
	case e.events <- ev:
	default: // slow consumer: drop telemetry, never block serving
	}
}

// retireCounters updates completion counters and the latency ring.
func (e *Engine) retireCounters(d time.Duration, expired bool) {
	if expired {
		e.insExpired.Inc()
	} else {
		e.insCompleted.Inc()
	}
	if d > 0 {
		e.insLatency.Observe(d.Seconds())
	}
	e.mu.Lock()
	if expired {
		e.expired++
	} else {
		e.completed++
	}
	if d > 0 {
		if len(e.lat) < latWindow {
			e.lat = append(e.lat, d)
		} else {
			e.lat[e.latPos] = d
			e.latPos = (e.latPos + 1) % latWindow
		}
	}
	e.mu.Unlock()
}
