package serve

import (
	"math"
	"testing"

	"photon/internal/data"
	"photon/internal/eval"
)

// TestSuiteEndToEnd runs the full evaluation suite against a live
// photon-serve over TCP — the acceptance path for serving-backed evaluation.
// Served accuracies must match the in-process suite almost exactly; the only
// admissible slack is the decode-vs-training float tolerance flipping an
// instance whose candidates are near-tied.
func TestSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite e2e is long")
	}
	m := testModel(31)
	src := data.NewMarkovSource("truth", m.Cfg.VocabSize, 9, 0.9, 77)
	want := eval.RunSuite("in-process", m, src, 5)

	client, shutdown := startServer(t, m, Config{MaxBatch: 4, MaxSeq: 128, Queue: 32})
	defer shutdown()

	got, err := eval.RunSuiteWith("served", client, src, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Acc) != len(want.Acc) {
		t.Fatalf("served suite covered %d tasks, in-process %d", len(got.Acc), len(want.Acc))
	}
	for task, wantAcc := range want.Acc {
		gotAcc, ok := got.Acc[task]
		if !ok {
			t.Fatalf("task %s missing from served report", task)
		}
		// Allow at most 2 of 120 instances to flip on near-ties.
		if math.Abs(gotAcc-wantAcc) > 2.0/120+1e-9 {
			t.Errorf("task %s: served accuracy %g, in-process %g", task, gotAcc, wantAcc)
		}
	}
}

// TestSuiteICLEndToEnd runs ICL-mode evaluation — pseudo-demonstrations
// retrieved from the training corpus, scored through the live server — and
// pins it against the identical ICL pipeline over an in-process scorer.
func TestSuiteICLEndToEnd(t *testing.T) {
	m := testModel(32)
	src := data.NewMarkovSource("truth", m.Cfg.VocabSize, 9, 0.9, 78)
	r := eval.NewRetriever(src, 2048, 9)
	task := eval.Task{Name: "icl-e2e", Choices: 4, PromptLen: 12, ContLen: 4, Distractor: eval.OtherSource, Instances: 40}

	wantAcc, err := task.EvaluateWith(&eval.ICLScorer{Inner: eval.ModelScorer{M: m}, R: r, Shots: 2, DemoLen: 8}, src, 3)
	if err != nil {
		t.Fatal(err)
	}

	client, shutdown := startServer(t, m, Config{MaxBatch: 4, MaxSeq: 128, Queue: 32})
	defer shutdown()

	gotAcc, err := task.EvaluateWith(&eval.ICLScorer{Inner: client, R: r, Shots: 2, DemoLen: 8}, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotAcc-wantAcc) > 1.0/40+1e-9 {
		t.Fatalf("ICL served accuracy %g, in-process %g", gotAcc, wantAcc)
	}
}
