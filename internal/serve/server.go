package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"photon/internal/link"
	"photon/internal/nn"
)

// Meta keys of the serving wire protocol (MsgGenerate / MsgScore /
// MsgServeResult frames). Token ids travel as dense float32 payloads —
// exact for any vocabulary under 2²⁴.
const (
	// ReqIDKey correlates a result with its request; clients may pipeline
	// many requests on one connection.
	ReqIDKey = "req"
	// MaxNewKey, TempKey, TopKKey, TopPKey, SeedKey carry the generation
	// options of a MsgGenerate.
	MaxNewKey = "max_new"
	TempKey   = "temp"
	TopKKey   = "top_k"
	TopPKey   = "top_p"
	SeedKey   = "seed"
	// DeadlineMSKey is the request's time budget in milliseconds from
	// server receipt (relative, so clocks need not agree).
	DeadlineMSKey = "deadline_ms"
	// PromptLenKey splits a MsgScore payload into prompt and continuation.
	PromptLenKey = "prompt_len"
	// OKKey is 1 on success; failures carry the error text in ClientID.
	OKKey = "ok"
	// LogProbKey carries a scoring result in nats.
	LogProbKey = "logprob"
	// QueuedUSKey and TotalUSKey report the request's queue wait and total
	// latency in microseconds, so clients see server-side cost.
	QueuedUSKey = "queued_us"
	TotalUSKey  = "total_us"
)

// tokensToPayload packs token ids as a dense float32 payload.
func tokensToPayload(tokens []int) link.EncodedPayload {
	f := make([]float32, len(tokens))
	for i, t := range tokens {
		f[i] = float32(t)
	}
	return link.Dense(f)
}

// payloadToTokens unpacks a dense float32 payload back to token ids.
func payloadToTokens(p link.EncodedPayload) ([]int, error) {
	f, err := link.DecodePayload(nil, p)
	if err != nil {
		return nil, fmt.Errorf("serve: decode tokens: %w", err)
	}
	tokens := make([]int, len(f))
	for i, v := range f {
		tokens[i] = int(v)
	}
	return tokens, nil
}

// Server exposes an Engine over the link wire protocol. Each connection gets
// a reader goroutine (decoding requests, submitting to the engine) and a
// writer goroutine (serializing results), so many requests can be in flight
// per connection and results return in completion order, not request order.
type Server struct {
	eng *Engine
	l   *link.Listener

	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[*link.Conn]struct{}
}

// NewServer wraps an engine and listener. Call Run to accept.
func NewServer(eng *Engine, l *link.Listener) *Server {
	return &Server{eng: eng, l: l, conns: map[*link.Conn]struct{}{}}
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.l.Addr() }

// Run accepts connections until ctx is cancelled, then closes every live
// connection and waits for their handlers. The engine is not closed — the
// caller owns its lifecycle.
func (s *Server) Run(ctx context.Context) error {
	for {
		conn, err := s.l.AcceptContext(ctx)
		if err != nil {
			if ctx.Err() != nil {
				s.connMu.Lock()
				for c := range s.conns {
					c.Close()
				}
				s.connMu.Unlock()
				s.wg.Wait()
				return ctx.Err()
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection: read loop here, write loop in a sibling
// goroutine fed by a results channel (link.Conn allows one concurrent sender,
// so all request goroutines funnel through it).
func (s *Server) handle(conn *link.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()

	results := make(chan *link.Message, 64)
	var reqWG sync.WaitGroup
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for m := range results {
			if err := conn.Send(m); err != nil {
				return // connection gone; readers will notice on their next op
			}
		}
	}()

	for {
		msg, err := conn.Recv()
		if err != nil {
			break // io.EOF on clean close; anything else also ends the conn
		}
		switch msg.Type {
		case link.MsgGenerate, link.MsgScore:
			req, reqID, err := decodeRequest(msg)
			if err != nil {
				results <- errorResult(reqID, err)
				continue
			}
			resCh, err := s.eng.Submit(req)
			if err != nil {
				results <- errorResult(reqID, err)
				continue
			}
			reqWG.Add(1)
			go func(id float64) {
				defer reqWG.Done()
				results <- encodeResult(id, <-resCh)
			}(reqID)
		case link.MsgShutdown:
			reqWG.Wait()
			close(results)
			<-writerDone
			return
		default:
			results <- errorResult(metaOr(msg.Meta, ReqIDKey, 0),
				fmt.Errorf("serve: unexpected message type %d", msg.Type))
		}
	}
	reqWG.Wait()
	close(results)
	<-writerDone
}

func metaOr(m map[string]float64, key string, def float64) float64 {
	if v, ok := m[key]; ok {
		return v
	}
	return def
}

// decodeRequest maps a wire frame to an engine request.
func decodeRequest(msg *link.Message) (Request, float64, error) {
	reqID := metaOr(msg.Meta, ReqIDKey, 0)
	tokens, err := payloadToTokens(msg.Payload)
	if err != nil {
		return Request{}, reqID, err
	}
	req := Request{Seed: int64(metaOr(msg.Meta, SeedKey, 0))}
	if d := metaOr(msg.Meta, DeadlineMSKey, 0); d > 0 {
		req.Deadline = time.Now().Add(time.Duration(d) * time.Millisecond)
	}
	switch msg.Type {
	case link.MsgScore:
		pl := int(metaOr(msg.Meta, PromptLenKey, 0))
		if pl < 0 || pl >= len(tokens) {
			return Request{}, reqID, fmt.Errorf("serve: prompt length %d of %d tokens", pl, len(tokens))
		}
		req.Prompt, req.Cont = tokens[:pl], tokens[pl:]
	default:
		req.Prompt = tokens
		req.MaxNew = int(metaOr(msg.Meta, MaxNewKey, 0))
		req.Opts = nn.SampleOpts{
			Temperature: metaOr(msg.Meta, TempKey, 0),
			TopK:        int(metaOr(msg.Meta, TopKKey, 0)),
			TopP:        metaOr(msg.Meta, TopPKey, 0),
		}
	}
	return req, reqID, nil
}

// encodeResult maps an engine result to its wire frame.
func encodeResult(reqID float64, res Result) *link.Message {
	m := &link.Message{
		Type: link.MsgServeResult,
		Meta: map[string]float64{
			ReqIDKey:    reqID,
			OKKey:       1,
			LogProbKey:  res.LogProb,
			QueuedUSKey: float64(res.Queued.Microseconds()),
			TotalUSKey:  float64(res.Duration.Microseconds()),
		},
	}
	if res.Err != nil {
		m.Meta[OKKey] = 0
		m.ClientID = res.Err.Error()
	}
	if len(res.Tokens) > 0 {
		m.Payload = tokensToPayload(res.Tokens)
	}
	return m
}

func errorResult(reqID float64, err error) *link.Message {
	return &link.Message{
		Type:     link.MsgServeResult,
		ClientID: err.Error(),
		Meta:     map[string]float64{ReqIDKey: reqID, OKKey: 0},
	}
}
