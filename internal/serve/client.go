package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"photon/internal/link"
	"photon/internal/nn"
)

// Client talks to a photon-serve instance over one link connection. It is
// safe for concurrent use: requests are pipelined and a single reader
// goroutine routes results back by request id, so N goroutines issuing
// requests through one Client exercise the server's continuous batching
// rather than serializing on the wire.
type Client struct {
	conn *link.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *link.Message
	err     error // sticky transport error, delivered to all waiters
}

// DialServer connects a Client to addr.
func DialServer(ctx context.Context, addr string) (*Client, error) {
	conn, err := link.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (use with link.Pipe in tests).
func NewClient(conn *link.Conn) *Client {
	c := &Client{conn: conn, pending: map[uint64]chan *link.Message{}}
	go c.readLoop()
	return c
}

// readLoop routes results to their waiting requests by id.
func (c *Client) readLoop() {
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("serve: connection lost: %w", err)
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if msg.Type != link.MsgServeResult {
			continue
		}
		id := uint64(metaOr(msg.Meta, ReqIDKey, 0))
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// roundTrip sends one request frame and blocks for its result.
func (c *Client) roundTrip(msg *link.Message) (*link.Message, error) {
	ch := make(chan *link.Message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if msg.Meta == nil {
		msg.Meta = map[string]float64{}
	}
	msg.Meta[ReqIDKey] = float64(id)
	if err := c.conn.Send(msg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: send: %w", err)
	}
	res, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("serve: connection closed")
		}
		return nil, err
	}
	if metaOr(res.Meta, OKKey, 0) != 1 {
		return nil, fmt.Errorf("serve: server error: %s", res.ClientID)
	}
	return res, nil
}

// GenOpts bundles a generation request's knobs for the client API.
type GenOpts struct {
	Sample nn.SampleOpts
	Seed   int64
	// Deadline is the server-side time budget (0 = none). It travels as a
	// relative duration, so client and server clocks need not agree.
	Deadline time.Duration
}

// Generate asks the server to continue prompt by maxNew sampled tokens.
func (c *Client) Generate(prompt []int, maxNew int, o GenOpts) ([]int, error) {
	msg := &link.Message{
		Type:    link.MsgGenerate,
		Payload: tokensToPayload(prompt),
		Meta: map[string]float64{
			MaxNewKey: float64(maxNew),
			TempKey:   o.Sample.Temperature,
			TopKKey:   float64(o.Sample.TopK),
			TopPKey:   o.Sample.TopP,
			SeedKey:   float64(o.Seed),
		},
	}
	if o.Deadline > 0 {
		msg.Meta[DeadlineMSKey] = float64(o.Deadline.Milliseconds())
	}
	res, err := c.roundTrip(msg)
	if err != nil {
		return nil, err
	}
	return payloadToTokens(res.Payload)
}

// Score asks the server for log p(cont | prompt) in nats over the same
// serving path generation uses — the e2e contract with
// eval.ContinuationLogProb.
func (c *Client) Score(prompt, cont []int) (float64, error) {
	seq := make([]int, 0, len(prompt)+len(cont))
	seq = append(seq, prompt...)
	seq = append(seq, cont...)
	msg := &link.Message{
		Type:    link.MsgScore,
		Payload: tokensToPayload(seq),
		Meta:    map[string]float64{PromptLenKey: float64(len(prompt))},
	}
	res, err := c.roundTrip(msg)
	if err != nil {
		return 0, err
	}
	return metaOr(res.Meta, LogProbKey, 0), nil
}

// Close performs a graceful shutdown: the server finishes in-flight requests
// for this connection before it is torn down.
func (c *Client) Close() error {
	// Best-effort shutdown frame; the transport close is what matters.
	c.conn.Send(&link.Message{Type: link.MsgShutdown})
	return c.conn.Close()
}
