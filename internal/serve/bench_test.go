package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"photon/internal/nn"
)

// serveBenchModel is the serving benchmark shape: big enough that a decode
// step has real matmul work, small enough that the benchmark suite stays in
// CI budget.
func serveBenchModel() *nn.Model {
	cfg := nn.Config{
		Name:      "serve-bench",
		VocabSize: 256,
		Dim:       64,
		Heads:     4,
		Blocks:    4,
		ExpRatio:  4,
		SeqLen:    64,
	}
	return nn.NewModel(cfg, rand.New(rand.NewSource(17)))
}

// The benchmark workload is decode-dominated (short prompt, long
// continuation): prompt prefill is a multi-row forward and therefore already
// batched even when requests serialize, so steady-state decode is where
// continuous batching earns its keep — exactly the regime real serving
// spends its time in.
const (
	benchPromptLen = 8
	benchMaxNew    = 48
)

// runServeLoad saturates the engine with `requests` generation requests —
// a standing backlog in the admission queue, so a freed batch slot refills
// on the scheduler's next poll — and returns aggregate tokens/s plus the
// engine's latency percentiles.
func runServeLoad(e *Engine, requests int) (tokPerSec float64, p50, p99 time.Duration) {
	prompt := make([]int, benchPromptLen)
	for i := range prompt {
		prompt[i] = (i * 7) % 256
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < requests; i++ {
		// Retry on queue-full: the benchmark offers load as fast as the
		// queue drains, which is what a saturated server sees.
		var ch <-chan Result
		for {
			var err error
			ch, err = e.Submit(Request{Prompt: prompt, MaxNew: benchMaxNew, Seed: int64(i)})
			if err == nil {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		wg.Add(1)
		go func(ch <-chan Result) {
			defer wg.Done()
			<-ch
		}(ch)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := e.Stats()
	return float64(requests*benchMaxNew) / elapsed, st.P50, st.P99
}

// BenchmarkServeContinuous measures aggregate decode throughput with
// continuous batching across concurrency levels. One benchmark iteration is
// one full load wave of 2×conc requests, benchMaxNew tokens each.
func BenchmarkServeContinuous(b *testing.B) {
	for _, conc := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			m := serveBenchModel()
			e := NewEngine(m, Config{MaxBatch: conc, MaxSeq: 64, Queue: 64})
			defer e.Close()
			requests := 2 * conc
			runServeLoad(e, requests) // warm caches and workspace
			b.ReportAllocs()
			b.ResetTimer()
			var tps float64
			for i := 0; i < b.N; i++ {
				tps, _, _ = runServeLoad(e, requests)
			}
			b.ReportMetric(tps, "tokens/s")
		})
	}
}

// BenchmarkServeSequential is the baseline: the same offered concurrency,
// but a single batch slot — requests serialize through the model the way a
// naive serving loop would.
func BenchmarkServeSequential(b *testing.B) {
	for _, conc := range []int{1, 4} {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			m := serveBenchModel()
			e := NewEngine(m, Config{MaxBatch: 1, MaxSeq: 64, Queue: 64})
			defer e.Close()
			requests := 2 * conc
			runServeLoad(e, requests)
			b.ReportAllocs()
			b.ResetTimer()
			var tps float64
			for i := 0; i < b.N; i++ {
				tps, _, _ = runServeLoad(e, requests)
			}
			b.ReportMetric(tps, "tokens/s")
		})
	}
}

// TestWriteServeBenchJSON emits the serving-throughput curve as JSON when
// BENCH_SERVE_JSON names an output path — the CI hook behind
// BENCH_serve.json. For each concurrency level it measures continuous
// batching (MaxBatch = concurrency) against the sequential baseline
// (MaxBatch = 1) on the same offered load, recording aggregate tokens/s and
// request-latency percentiles.
func TestWriteServeBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		t.Skip("BENCH_SERVE_JSON not set")
	}
	type point struct {
		Concurrency     int     `json:"concurrency"`
		TokensPerSec    float64 `json:"tokens_per_sec"`
		P50us           int64   `json:"p50_us"`
		P99us           int64   `json:"p99_us"`
		SeqTokensPerSec float64 `json:"sequential_tokens_per_sec"`
		SeqP50us        int64   `json:"sequential_p50_us"`
		SeqP99us        int64   `json:"sequential_p99_us"`
		Speedup         float64 `json:"continuous_vs_sequential"`
	}
	measure := func(maxBatch, requests int) (float64, time.Duration, time.Duration) {
		m := serveBenchModel()
		e := NewEngine(m, Config{MaxBatch: maxBatch, MaxSeq: 64, Queue: 64})
		defer e.Close()
		runServeLoad(e, requests) // warm
		best := 0.0
		var p50, p99 time.Duration
		for rep := 0; rep < 3; rep++ {
			tps, a, b := runServeLoad(e, requests)
			if tps > best {
				best, p50, p99 = tps, a, b
			}
		}
		return best, p50, p99
	}
	var points []point
	for _, conc := range []int{1, 2, 4, 8} {
		requests := 4 * conc
		ct, cp50, cp99 := measure(conc, requests)
		st, sp50, sp99 := measure(1, requests)
		points = append(points, point{
			Concurrency:     conc,
			TokensPerSec:    ct,
			P50us:           cp50.Microseconds(),
			P99us:           cp99.Microseconds(),
			SeqTokensPerSec: st,
			SeqP50us:        sp50.Microseconds(),
			SeqP99us:        sp99.Microseconds(),
			Speedup:         ct / st,
		})
	}
	report := struct {
		Config    string  `json:"config"`
		PromptLen int     `json:"prompt_len"`
		MaxNew    int     `json:"max_new"`
		Points    []point `json:"points"`
		Comment   string  `json:"comment"`
	}{
		Config:    "serve-bench",
		PromptLen: benchPromptLen,
		MaxNew:    benchMaxNew,
		Points:    points,
		Comment:   "KV-cached continuous batching (MaxBatch=concurrency) vs sequential baseline (MaxBatch=1) on identical offered load; best of 3 waves per point. Row-paired matmul microkernels amortize weight traffic from batch 4 up, so the win appears at >=4 concurrent sequences",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("conc %d: continuous %.0f tok/s vs sequential %.0f tok/s (%.2fx), p50 %dus p99 %dus\n",
			p.Concurrency, p.TokensPerSec, p.SeqTokensPerSec, p.Speedup, p.P50us, p.P99us)
	}
}
