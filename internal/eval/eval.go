// Package eval implements the downstream in-context evaluation standing in
// for the paper's Table 7/8 benchmark suite (ARC, HellaSwag, PIQA, ...).
//
// Real benchmark datasets are unavailable offline, so each task is a
// synthetic likelihood-scored multiple-choice problem over the training
// distribution: the model sees a prompt sampled from the corpus and must
// assign a higher continuation log-likelihood to the true continuation than
// to distractors. Task difficulty is controlled by the number of choices,
// the distractor generator, and the continuation length — giving the same
// *monotonicity* property the paper reports (bigger/better-trained Photon
// models win more comparisons) without pretending to measure commonsense.
package eval

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"photon/internal/data"
	"photon/internal/nn"
	"photon/internal/tensor"
)

// Distractor selects how wrong answers are generated, ordered by how hard
// they are to reject.
type Distractor int

// Distractor kinds.
const (
	// RandomTokens draws distractors uniformly over the vocabulary (easy).
	RandomTokens Distractor = iota
	// OtherSource draws distractors from a different Markov source (medium).
	OtherSource
	// ShuffledTruth permutes the true continuation's tokens (hard: same
	// unigram content, broken structure).
	ShuffledTruth
)

// Task is one synthetic in-context benchmark.
type Task struct {
	Name       string
	Choices    int // answer options per instance (≥2)
	PromptLen  int
	ContLen    int
	Distractor Distractor
	Instances  int
}

// Suite returns the 13 tasks mirroring the paper's Table 7/8 columns. Names
// follow the original benchmarks; difficulty varies across tasks so model
// rankings have room to show.
func Suite() []Task {
	return []Task{
		// Table 7 group.
		{Name: "arc-challenge", Choices: 4, PromptLen: 24, ContLen: 6, Distractor: ShuffledTruth, Instances: 120},
		{Name: "bigbench-qa-wikidata", Choices: 4, PromptLen: 16, ContLen: 4, Distractor: OtherSource, Instances: 120},
		{Name: "hellaswag", Choices: 4, PromptLen: 20, ContLen: 8, Distractor: OtherSource, Instances: 120},
		{Name: "piqa", Choices: 2, PromptLen: 16, ContLen: 6, Distractor: OtherSource, Instances: 120},
		{Name: "winogrande", Choices: 2, PromptLen: 20, ContLen: 4, Distractor: ShuffledTruth, Instances: 120},
		{Name: "arc-easy", Choices: 4, PromptLen: 16, ContLen: 4, Distractor: RandomTokens, Instances: 120},
		{Name: "boolq", Choices: 2, PromptLen: 24, ContLen: 2, Distractor: ShuffledTruth, Instances: 120},
		// Table 8 group.
		{Name: "openbook-qa", Choices: 4, PromptLen: 12, ContLen: 4, Distractor: OtherSource, Instances: 120},
		{Name: "winograd", Choices: 2, PromptLen: 16, ContLen: 4, Distractor: ShuffledTruth, Instances: 120},
		{Name: "lambada", Choices: 4, PromptLen: 28, ContLen: 2, Distractor: OtherSource, Instances: 120},
		{Name: "bigbench-strategy-qa", Choices: 2, PromptLen: 20, ContLen: 6, Distractor: ShuffledTruth, Instances: 120},
		{Name: "copa", Choices: 2, PromptLen: 8, ContLen: 6, Distractor: OtherSource, Instances: 120},
		{Name: "mmlu", Choices: 4, PromptLen: 24, ContLen: 4, Distractor: ShuffledTruth, Instances: 120},
	}
}

// Chance returns the accuracy of random guessing on the task.
func (t Task) Chance() float64 { return 1 / float64(t.Choices) }

// distractorSeed derives the OtherSource distractor generator's seed from
// the task name and the caller's evaluation seed. Every task used to share
// the fixed seed 0xD157, which correlated the "independent" benchmarks:
// two OtherSource tasks with the same continuation length drew identical
// distractors. Hashing (name, seed) gives each task its own stream while
// keeping evaluation deterministic for a fixed seed.
func distractorSeed(name string, seed int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	return h.Sum64()
}

// Scorer computes log p(cont | prompt) in nats. It is the seam between
// evaluation and the model: ModelScorer runs in process, serve.Engine and
// serve.Client satisfy it over the serving stack, and ICLScorer wraps any of
// them with retrieved pseudo-demonstrations.
type Scorer interface {
	Score(prompt, cont []int) (float64, error)
}

// ModelScorer adapts an in-process model to the Scorer seam.
type ModelScorer struct{ M *nn.Model }

// Score implements Scorer via ContinuationLogProb's full forward.
func (s ModelScorer) Score(prompt, cont []int) (float64, error) {
	return ContinuationLogProb(s.M, prompt, cont), nil
}

// Evaluate scores the model on the task using src as the truth distribution
// and a deterministic instance stream from seed. It returns accuracy in
// [0, 1]: the fraction of instances where the true continuation has the
// highest length-normalized log-likelihood. The distractor source is seeded
// per (task, seed), so no two tasks share a distractor stream.
func (t Task) Evaluate(m *nn.Model, src data.Source, seed int64) float64 {
	acc, _ := t.EvaluateWith(ModelScorer{m}, src, seed)
	return acc
}

// EvaluateWith is Evaluate over an arbitrary Scorer — the same instance
// stream, candidates, and accuracy statistic, but the likelihoods may come
// from a serving stack or an ICL wrapper instead of a direct model call. It
// stops at the first scoring error (a lost connection fails the evaluation
// rather than skewing it).
func (t Task) EvaluateWith(sc Scorer, src data.Source, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	distractorSrc := data.NewMarkovSource("distractor", src.Vocab(), 9, 0.9, distractorSeed(t.Name, seed))
	correct := 0
	full := make([]int, t.PromptLen+t.ContLen)
	for inst := 0; inst < t.Instances; inst++ {
		src.Sample(rng, full)
		prompt := append([]int(nil), full[:t.PromptLen]...)
		truth := append([]int(nil), full[t.PromptLen:]...)

		candidates := make([][]int, t.Choices)
		truthIdx := rng.Intn(t.Choices)
		for c := range candidates {
			if c == truthIdx {
				candidates[c] = truth
				continue
			}
			candidates[c] = t.makeDistractor(rng, distractorSrc, truth)
		}

		best, bestScore := -1, math.Inf(-1)
		for c, cand := range candidates {
			lp, err := sc.Score(prompt, cand)
			if err != nil {
				return 0, err
			}
			score := lp / float64(len(cand))
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best == truthIdx {
			correct++
		}
	}
	return float64(correct) / float64(t.Instances), nil
}

func (t Task) makeDistractor(rng *rand.Rand, other data.Source, truth []int) []int {
	out := make([]int, len(truth))
	switch t.Distractor {
	case RandomTokens:
		for i := range out {
			out[i] = rng.Intn(other.Vocab())
		}
	case OtherSource:
		other.Sample(rng, out)
	default: // ShuffledTruth
		copy(out, truth)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

// ContinuationLogProb returns the sum of log p(cont_t | prompt, cont_<t)
// under the model, in nats.
func ContinuationLogProb(m *nn.Model, prompt, cont []int) float64 {
	seq := make([]int, 0, len(prompt)+len(cont))
	seq = append(seq, prompt...)
	seq = append(seq, cont...)
	logits := m.Logits([][]int{seq})
	var lp float64
	for i := range cont {
		pos := len(prompt) + i - 1 // logits at pos predict token pos+1
		row := logits.Row(pos)
		lse := tensor.LogSumExpRow(row)
		lp += float64(row[seq[pos+1]]) - lse
	}
	return lp
}

// Report is one model's accuracy per task.
type Report struct {
	Model string
	Acc   map[string]float64
}

// RunSuite evaluates a model on every task in the suite.
func RunSuite(name string, m *nn.Model, src data.Source, seed int64) Report {
	r, _ := RunSuiteWith(name, ModelScorer{m}, src, seed)
	return r
}

// RunSuiteWith evaluates every task in the suite through an arbitrary Scorer
// — the e2e path when sc is a serve.Client talking to a live photon-serve.
func RunSuiteWith(name string, sc Scorer, src data.Source, seed int64) (Report, error) {
	r := Report{Model: name, Acc: map[string]float64{}}
	for _, t := range Suite() {
		acc, err := t.EvaluateWith(sc, src, seed)
		if err != nil {
			return r, err
		}
		r.Acc[t.Name] = acc
	}
	return r, nil
}

// Wins counts the pairwise comparisons a wins against b across tasks (ties
// are half a win each), the statistic behind the paper's "wins 10 of 14
// comparisons" claim.
func Wins(a, b Report) (wins float64, total int) {
	for task, av := range a.Acc {
		bv, ok := b.Acc[task]
		if !ok {
			continue
		}
		total++
		switch {
		case av > bv:
			wins++
		case av == bv:
			wins += 0.5
		}
	}
	return wins, total
}
