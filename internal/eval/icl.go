package eval

// This file implements zero-shot ICL via pseudo-demonstrations (Z-ICL
// style): instead of labeled demonstrations, retrieve corpus windows that
// resemble the test prompt and prepend them as in-context examples. The
// retrieved text is real training distribution — each window is a naturally
// occurring "prompt plus its true continuation" — so the model conditions on
// distribution-matched context without any task supervision.

import (
	"math/rand"
	"sort"

	"photon/internal/data"
)

// Retriever indexes a token corpus for nearest-window lookup. Similarity is
// unigram multiset overlap with a bigram bonus: cheap, deterministic, and
// strongly favors windows from the same local distribution as the query.
type Retriever struct {
	corpus []int
	vocab  int

	// scratch for query statistics, reused across Retrieve calls
	uni map[int]int
	bi  map[int]int
}

// NewRetriever samples a corpusLen-token corpus from src (the training
// distribution) and indexes it. The corpus is drawn in source-native chunks
// so local structure — what retrieval keys on — is preserved.
func NewRetriever(src data.Source, corpusLen int, seed int64) *Retriever {
	rng := rand.New(rand.NewSource(seed))
	corpus := make([]int, corpusLen)
	const chunk = 256
	for off := 0; off < corpusLen; off += chunk {
		end := off + chunk
		if end > corpusLen {
			end = corpusLen
		}
		src.Sample(rng, corpus[off:end])
	}
	return NewRetrieverFromCorpus(corpus, src.Vocab())
}

// NewRetrieverFromCorpus indexes an existing token stream (e.g. actual
// training shards) instead of sampling a fresh one.
func NewRetrieverFromCorpus(corpus []int, vocab int) *Retriever {
	return &Retriever{
		corpus: corpus,
		vocab:  vocab,
		uni:    map[int]int{},
		bi:     map[int]int{},
	}
}

// window is a candidate demonstration during retrieval.
type window struct {
	off   int
	score int
}

// Retrieve returns up to k non-overlapping wlen-token windows of the corpus
// ranked by similarity to query, best first. Ties break toward earlier
// corpus positions, so retrieval is deterministic.
func (r *Retriever) Retrieve(query []int, k, wlen int) [][]int {
	if k <= 0 || wlen <= 0 || wlen > len(r.corpus) {
		return nil
	}
	for t := range r.uni {
		delete(r.uni, t)
	}
	for b := range r.bi {
		delete(r.bi, b)
	}
	for _, t := range query {
		r.uni[t]++
	}
	for i := 0; i+1 < len(query); i++ {
		r.bi[query[i]*r.vocab+query[i+1]]++
	}

	stride := wlen / 2
	if stride < 1 {
		stride = 1
	}
	var cands []window
	for off := 0; off+wlen <= len(r.corpus); off += stride {
		cands = append(cands, window{off: off, score: r.windowScore(off, wlen)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].off < cands[j].off
	})

	// Greedily take the best windows that don't overlap already-taken ones,
	// so k demonstrations are k distinct corpus regions.
	var taken []window
	for _, c := range cands {
		if len(taken) == k {
			break
		}
		overlaps := false
		for _, t := range taken {
			if c.off < t.off+wlen && t.off < c.off+wlen {
				overlaps = true
				break
			}
		}
		if !overlaps {
			taken = append(taken, c)
		}
	}
	out := make([][]int, len(taken))
	for i, t := range taken {
		out[i] = r.corpus[t.off : t.off+wlen]
	}
	return out
}

// windowScore counts query unigrams matched by the window (multiset
// intersection) plus a double-weighted bigram intersection, without mutating
// the query maps.
func (r *Retriever) windowScore(off, wlen int) int {
	score := 0
	// Multiset intersection needs per-window consumption counts; small
	// fixed-size maps allocated per window would thrash, so count matches by
	// walking the window and decrementing copies lazily via local maps.
	used := make(map[int]int, wlen)
	for _, t := range r.corpus[off : off+wlen] {
		if used[t] < r.uni[t] {
			used[t]++
			score++
		}
	}
	usedBi := make(map[int]int, wlen)
	for i := off; i+1 < off+wlen; i++ {
		b := r.corpus[i]*r.vocab + r.corpus[i+1]
		if usedBi[b] < r.bi[b] {
			usedBi[b]++
			score += 2
		}
	}
	return score
}

// ICLScorer wraps a Scorer with retrieved pseudo-demonstrations: each Score
// call retrieves Shots windows of DemoLen tokens similar to the prompt and
// conditions on demos‖prompt instead of the bare prompt. The continuation
// and the accuracy statistic are untouched, so ICL and bare evaluation are
// directly comparable.
type ICLScorer struct {
	Inner   Scorer
	R       *Retriever
	Shots   int
	DemoLen int

	ctx []int // reused conditioning buffer
}

// Score implements Scorer with the pseudo-demonstration context prepended.
func (s *ICLScorer) Score(prompt, cont []int) (float64, error) {
	demos := s.R.Retrieve(prompt, s.Shots, s.DemoLen)
	s.ctx = s.ctx[:0]
	for _, d := range demos {
		s.ctx = append(s.ctx, d...)
	}
	s.ctx = append(s.ctx, prompt...)
	return s.Inner.Score(s.ctx, cont)
}
