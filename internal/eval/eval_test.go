package eval

import (
	"math"
	"math/rand"
	"testing"

	"photon/internal/data"
	"photon/internal/nn"
	"photon/internal/opt"
)

func tinyCfg() nn.Config {
	c := nn.ConfigTiny
	c.SeqLen = 40 // long enough for the longest prompt+continuation
	return c
}

// trainedModel fits a tiny model on the corpus for a few hundred steps.
func trainedModel(t *testing.T, steps int) *nn.Model {
	t.Helper()
	cfg := tinyCfg()
	m := nn.NewModel(cfg, rand.New(rand.NewSource(1)))
	src := data.C4Like(cfg.VocabSize)
	st := data.NewSourceStream(src, 3)
	o := opt.NewAdamW(0.9, 0.95, 0.01)
	for s := 0; s < steps; s++ {
		b := st.NextBatch(8, 24)
		m.Params().ZeroGrads()
		m.ForwardBackward(b)
		m.Params().ClipGradNorm(1)
		o.Step(m.Params(), 3e-3)
	}
	return m
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 13 {
		t.Fatalf("want 13 tasks (Tables 7+8), got %d", len(suite))
	}
	seen := map[string]bool{}
	for _, task := range suite {
		if task.Choices < 2 || task.PromptLen < 1 || task.ContLen < 1 || task.Instances < 1 {
			t.Errorf("task %s has degenerate parameters: %+v", task.Name, task)
		}
		if seen[task.Name] {
			t.Errorf("duplicate task name %s", task.Name)
		}
		seen[task.Name] = true
		if c := task.Chance(); c != 1/float64(task.Choices) {
			t.Errorf("task %s chance: got %v", task.Name, c)
		}
	}
}

func TestContinuationLogProbNegativeAndAdditive(t *testing.T) {
	m := nn.NewModel(tinyCfg(), rand.New(rand.NewSource(2)))
	prompt := []int{1, 2, 3, 4}
	cont := []int{5, 6}
	lp := ContinuationLogProb(m, prompt, cont)
	if lp >= 0 {
		t.Fatalf("log-prob must be negative: %v", lp)
	}
	// Splitting the continuation must give the same total (chain rule).
	lp1 := ContinuationLogProb(m, prompt, cont[:1])
	lp2 := ContinuationLogProb(m, append(append([]int{}, prompt...), cont[0]), cont[1:])
	if math.Abs(lp-(lp1+lp2)) > 1e-4 {
		t.Fatalf("chain rule violated: %v vs %v + %v", lp, lp1, lp2)
	}
}

func TestUntrainedModelNearChance(t *testing.T) {
	m := nn.NewModel(tinyCfg(), rand.New(rand.NewSource(3)))
	src := data.C4Like(tinyCfg().VocabSize)
	task := Task{Name: "probe", Choices: 4, PromptLen: 8, ContLen: 4,
		Distractor: OtherSource, Instances: 150}
	acc := task.Evaluate(m, src, 42)
	// An untrained model should sit near chance (0.25); allow a wide band
	// because length-normalized likelihood has mild biases.
	if acc < 0.05 || acc > 0.55 {
		t.Fatalf("untrained accuracy implausible: %v", acc)
	}
}

func TestTrainedModelBeatsUntrained(t *testing.T) {
	trained := trainedModel(t, 250)
	untrained := nn.NewModel(tinyCfg(), rand.New(rand.NewSource(4)))
	src := data.C4Like(tinyCfg().VocabSize)

	rTrained := RunSuite("trained", trained, src, 7)
	rUntrained := RunSuite("untrained", untrained, src, 7)
	wins, total := Wins(rTrained, rUntrained)
	if total != 13 {
		t.Fatalf("total comparisons: got %d", total)
	}
	// The paper's claim shape: the better model wins most comparisons.
	if wins < 8 {
		t.Fatalf("trained model won only %.1f of %d comparisons", wins, total)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	m := nn.NewModel(tinyCfg(), rand.New(rand.NewSource(5)))
	src := data.C4Like(tinyCfg().VocabSize)
	task := Suite()[0]
	task.Instances = 30
	a := task.Evaluate(m, src, 9)
	b := task.Evaluate(m, src, 9)
	if a != b {
		t.Fatalf("same seed gave different accuracy: %v vs %v", a, b)
	}
}

// TestTasksDoNotShareDistractorStreams is the regression for the fixed
// 0xD157 distractor seed: two different tasks evaluated under the same
// caller seed must draw from distinct distractor sources. With the shared
// seed, equal-length draws from two tasks' sources were byte-identical.
func TestTasksDoNotShareDistractorStreams(t *testing.T) {
	const vocab, seed = 64, 9
	sample := func(task string) []int {
		src := data.NewMarkovSource("distractor", vocab, 9, 0.9, distractorSeed(task, seed))
		rng := rand.New(rand.NewSource(1)) // same consumer randomness both times
		out := make([]int, 256)
		src.Sample(rng, out)
		return out
	}
	a := sample("hellaswag")
	b := sample("piqa")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two tasks drew an identical distractor stream; seeds are still correlated")
	}
	// Determinism must survive the fix: the same (task, seed) pair always
	// yields the same stream.
	c := sample("hellaswag")
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("distractor stream is no longer deterministic per (task, seed)")
		}
	}
	// And distinct caller seeds must decorrelate even the same task.
	if distractorSeed("mmlu", 1) == distractorSeed("mmlu", 2) {
		t.Fatal("caller seed does not reach the distractor seed")
	}
}

func TestDistractorKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	other := data.NewMarkovSource("o", 64, 9, 0.9, 0xD157)
	truth := []int{1, 2, 3, 4, 5, 6}
	for _, kind := range []Distractor{RandomTokens, OtherSource, ShuffledTruth} {
		task := Task{Distractor: kind}
		d := task.makeDistractor(rng, other, truth)
		if len(d) != len(truth) {
			t.Fatalf("kind %d: distractor length %d", kind, len(d))
		}
	}
	// ShuffledTruth preserves the multiset of tokens.
	task := Task{Distractor: ShuffledTruth}
	d := task.makeDistractor(rng, other, truth)
	counts := map[int]int{}
	for _, v := range truth {
		counts[v]++
	}
	for _, v := range d {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatal("shuffled distractor changed token content")
		}
	}
}

func TestWinsCounting(t *testing.T) {
	a := Report{Acc: map[string]float64{"x": 0.6, "y": 0.5, "z": 0.4}}
	b := Report{Acc: map[string]float64{"x": 0.5, "y": 0.5, "z": 0.5}}
	wins, total := Wins(a, b)
	if total != 3 || wins != 1.5 { // win, tie (0.5), loss
		t.Fatalf("wins=%v total=%d", wins, total)
	}
	// Missing tasks are skipped.
	c := Report{Acc: map[string]float64{"x": 0.1}}
	if _, total := Wins(a, c); total != 1 {
		t.Fatalf("mismatched task sets: total %d", total)
	}
}
