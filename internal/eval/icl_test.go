package eval

import (
	"math"
	"math/rand"
	"testing"

	"photon/internal/data"
	"photon/internal/nn"
)

func iclTestModel() *nn.Model {
	cfg := nn.Config{
		VocabSize: 61,
		Dim:       24,
		Heads:     3,
		Blocks:    2,
		ExpRatio:  2,
		SeqLen:    16,
	}
	return nn.NewModel(cfg, rand.New(rand.NewSource(41)))
}

// TestEvaluateWithMatchesEvaluate pins the Scorer refactor: evaluating
// through ModelScorer must reproduce the direct path instance for instance.
func TestEvaluateWithMatchesEvaluate(t *testing.T) {
	m := iclTestModel()
	src := data.NewMarkovSource("truth", 61, 9, 0.9, 7)
	task := Task{Name: "refactor-pin", Choices: 4, PromptLen: 10, ContLen: 4, Distractor: OtherSource, Instances: 30}

	want := task.Evaluate(m, src, 3)
	got, err := task.EvaluateWith(ModelScorer{m}, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateWith %g, Evaluate %g", got, want)
	}
}

// TestRetrieverFindsPlantedWindow checks retrieval keys on content: a query
// copied verbatim from the corpus must retrieve exactly its source window.
func TestRetrieverFindsPlantedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	corpus := make([]int, 1024)
	for i := range corpus {
		corpus[i] = rng.Intn(30) // tokens 0..29 only
	}
	// Plant a window of out-of-band tokens the rest of the corpus never uses.
	planted := []int{55, 42, 57, 41, 59, 44, 53, 40}
	copy(corpus[512:], planted)

	r := NewRetrieverFromCorpus(corpus, 61)
	got := r.Retrieve(planted, 1, len(planted))
	if len(got) != 1 {
		t.Fatalf("retrieved %d windows, want 1", len(got))
	}
	for i := range planted {
		if got[0][i] != planted[i] {
			t.Fatalf("retrieved window %v, want planted %v", got[0], planted)
		}
	}
}

// TestRetrieverWindowsDisjoint checks the k demonstrations are k distinct
// corpus regions and retrieval is deterministic.
func TestRetrieverWindowsDisjoint(t *testing.T) {
	src := data.NewMarkovSource("truth", 61, 9, 0.9, 13)
	r := NewRetriever(src, 2048, 5)
	query := make([]int, 12)
	for i := range query {
		query[i] = (i * 5) % 61
	}
	a := r.Retrieve(query, 3, 16)
	b := r.Retrieve(query, 3, 16)
	if len(a) != 3 {
		t.Fatalf("retrieved %d windows, want 3", len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("retrieval not deterministic")
			}
		}
	}
	// Windows share no backing array region (Retrieve returns corpus slices).
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			ai, aj := &a[i][0], &a[j][0]
			if ai == aj {
				t.Fatal("windows overlap")
			}
		}
	}
}

// recordingScorer captures the conditioning context ICLScorer builds.
type recordingScorer struct {
	prompt []int
	cont   []int
}

func (s *recordingScorer) Score(prompt, cont []int) (float64, error) {
	s.prompt = append([]int(nil), prompt...)
	s.cont = append([]int(nil), cont...)
	return 0, nil
}

// TestICLScorerContext pins the demonstration layout: the inner scorer must
// see demo_1‖…‖demo_k‖prompt as its prompt and the untouched continuation.
func TestICLScorerContext(t *testing.T) {
	src := data.NewMarkovSource("truth", 61, 9, 0.9, 17)
	r := NewRetriever(src, 1024, 3)
	rec := &recordingScorer{}
	icl := &ICLScorer{Inner: rec, R: r, Shots: 2, DemoLen: 8}

	prompt := []int{1, 2, 3, 4, 5}
	cont := []int{6, 7}
	if _, err := icl.Score(prompt, cont); err != nil {
		t.Fatal(err)
	}
	demos := r.Retrieve(prompt, 2, 8)
	want := append(append(append([]int(nil), demos[0]...), demos[1]...), prompt...)
	if len(rec.prompt) != len(want) {
		t.Fatalf("inner prompt %d tokens, want %d", len(rec.prompt), len(want))
	}
	for i := range want {
		if rec.prompt[i] != want[i] {
			t.Fatalf("inner prompt diverges at %d", i)
		}
	}
	for i := range cont {
		if rec.cont[i] != cont[i] {
			t.Fatal("continuation was modified")
		}
	}
}

// TestICLEvaluate runs a task end to end with pseudo-demonstrations over a
// real model: accuracy must be a valid deterministic statistic, and the ICL
// context must stay within what ALiBi extrapolation handles.
func TestICLEvaluate(t *testing.T) {
	m := iclTestModel()
	src := data.NewMarkovSource("truth", 61, 9, 0.9, 23)
	r := NewRetriever(src, 2048, 11)
	task := Task{Name: "icl-smoke", Choices: 2, PromptLen: 8, ContLen: 4, Distractor: RandomTokens, Instances: 30}

	icl := &ICLScorer{Inner: ModelScorer{m}, R: r, Shots: 2, DemoLen: 8}
	acc1, err := task.EvaluateWith(icl, src, 29)
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := task.EvaluateWith(icl, src, 29)
	if err != nil {
		t.Fatal(err)
	}
	if acc1 != acc2 {
		t.Fatalf("ICL evaluation not deterministic: %g vs %g", acc1, acc2)
	}
	if math.IsNaN(acc1) || acc1 < 0 || acc1 > 1 {
		t.Fatalf("accuracy %g out of range", acc1)
	}
}
