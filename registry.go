package photon

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/link"
)

// OuterOptimizer is the server-side (outer) optimizer contract: it consumes
// the round pseudo-gradient Δt = θt − mean_k(θt_k) and updates the global
// parameter vector in place. Implementations registered via
// RegisterServerOptimizer plug into every backend without touching core.
type OuterOptimizer interface {
	// Step applies θ_{t+1} = ServerOpt(θ_t, −Δ_t, t).
	Step(global, delta []float32, round int)
	// Name identifies the optimizer in logs and checkpoints.
	Name() string
}

// Source produces an endless token stream with a characteristic
// distribution; it is the extension contract behind RegisterDataSource.
type Source interface {
	// Name identifies the source ("arxiv", "c4", ...).
	Name() string
	// Vocab returns the vocabulary size tokens are drawn from.
	Vocab() int
	// Sample writes a sequence of tokens drawn from the source into out,
	// using rng for all randomness.
	Sample(rng *rand.Rand, out []int)
}

// Codec is the wire-codec contract behind RegisterCodec: Encode turns a
// float32 parameter vector into its codec-native wire form (EncodedPayload)
// and Decode reverses it. Encode may keep per-session state (error
// feedback); Decode must be stateless and safe for concurrent use. One
// instance is created per connection/session, so state never leaks across
// clients.
type Codec = link.Codec

// EncodedPayload is a codec's wire-native representation of a parameter
// vector: codec ID, decoded element count, and the bytes that cross the
// wire.
type EncodedPayload = link.EncodedPayload

var (
	registryMu       sync.RWMutex
	serverOptimizers = map[string]func() OuterOptimizer{}
	dataSources      = map[string]func(vocab int) []Source{}
)

// RegisterServerOptimizer makes a server optimizer available to jobs under
// name (selected via WithServerOptimizer). The factory is invoked once per
// run so stateful optimizers start fresh. Registering an existing name
// replaces it; the built-ins "fedavg", "fedmom", and "diloco" are
// pre-registered.
func RegisterServerOptimizer(name string, factory func() OuterOptimizer) {
	if name == "" || factory == nil {
		panic("photon: RegisterServerOptimizer requires a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	serverOptimizers[name] = factory
}

// RegisterDataSource makes a training corpus available to jobs under name
// (selected via WithDataSource). The factory receives the model's vocabulary
// size and returns one or more sources: a single source is sharded IID
// across clients; multiple sources model cross-client heterogeneity, each
// client holding one distinct source. The built-ins "c4" (single blended
// corpus) and "pile" (four statistically distinct sources) are
// pre-registered.
func RegisterDataSource(name string, factory func(vocab int) []Source) {
	if name == "" || factory == nil {
		panic("photon: RegisterDataSource requires a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	dataSources[name] = factory
}

// RegisterCodec makes a wire codec available to jobs under name (selected
// via WithCodec and negotiated at join time on the networked backends).
// The factory is invoked once per connection/session so stateful codecs
// (error-feedback residuals) stay per-client. The codec's wire ID is
// derived deterministically from the name — register the same codecs on
// every process of a fleet. Registering an existing name replaces it; the
// built-ins "dense", "flate", "q8", and "topk" are pre-registered, and
// parameterized variants ("topk:0.05", "q8:128") resolve through their
// base name.
func RegisterCodec(name string, factory func() Codec) {
	link.RegisterCodec(name, factory)
}

// Codecs lists the registered wire codec names, sorted.
func Codecs() []string { return link.Codecs() }

// ServerOptimizers lists the registered server optimizer names, sorted.
func ServerOptimizers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return sortedKeys(serverOptimizers)
}

// DataSources lists the registered data source names, sorted.
func DataSources() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return sortedKeys(dataSources)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookupServerOptimizer(name string) (OuterOptimizer, error) {
	registryMu.RLock()
	factory, ok := serverOptimizers[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("photon: unknown server optimizer %q (registered: %v)", name, ServerOptimizers())
	}
	return factory(), nil
}

func lookupDataSource(name string, vocab int) ([]data.Source, error) {
	registryMu.RLock()
	factory, ok := dataSources[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("photon: unknown data source %q (registered: %v)", name, DataSources())
	}
	srcs := factory(vocab)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("photon: data source %q produced no sources", name)
	}
	out := make([]data.Source, len(srcs))
	for i, s := range srcs {
		out[i] = s
	}
	return out, nil
}

func init() {
	RegisterServerOptimizer(string(FedAvg), func() OuterOptimizer { return fed.FedAvg{LR: 1.0} })
	RegisterServerOptimizer(string(FedMom), func() OuterOptimizer { return fed.NewFedMom(1.0, 0.9) })
	RegisterServerOptimizer(string(DiLoCo), func() OuterOptimizer { return fed.NewDiLoCo(0.1, 0.9) })
	RegisterDataSource("c4", func(vocab int) []Source {
		return []Source{data.C4Like(vocab)}
	})
	RegisterDataSource("pile", func(vocab int) []Source {
		pile := data.PileLike(vocab)
		out := make([]Source, len(pile))
		for i, s := range pile {
			out[i] = s
		}
		return out
	})
}
