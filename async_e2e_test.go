package photon

// End-to-end tests for asynchronous buffered (FedBuff-style) aggregation:
// a 10x straggler must no longer gate the global commit cadence, the
// staleness metadata must surface in the round records, and the async
// durable control plane must survive a crash-point sweep over its WAL
// record types — resuming mid-buffer to the bit-exact uninterrupted
// trajectory without ever training a client round twice.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"photon/internal/ckpt"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/testutil"
)

// asyncServerConfig is durableServerConfig switched into FedBuff mode:
// rounds count version commits and k updates fold per commit.
func asyncServerConfig(seed int64, versions, k int, outer fed.OuterOpt) fed.ServerConfig {
	cfg := durableServerConfig(seed, versions, outer)
	cfg.Async = &fed.AsyncConfig{K: k, Alpha: 0.5}
	return cfg
}

// asyncRun is one finished async fleet run: the server's round records with
// their commit arrival times, plus the fast client's per-round times.
type asyncRun struct {
	recs      []metrics.Round
	commitAt  []time.Time
	fastAt    []time.Time
	elapsed   time.Duration
	finalLoss float64
}

// runStragglerFleet runs a 2-client fleet where d1 trains stepsRatio x more
// local steps than d0 (a compute straggler, not a dead member), in either
// sync or async mode, and returns the commit/round timeline.
func runStragglerFleet(t *testing.T, async bool, versions, fastSteps, slowSteps int) asyncRun {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var mu sync.Mutex
	out := asyncRun{}

	fastSpec := netSpec()
	fastSpec.Steps = fastSteps
	slowSpec := netSpec()
	slowSpec.Steps = slowSteps

	fastDone := make(chan error, 1)
	go func() {
		fastDone <- fed.RunResilientClient(ctx, func(ctx context.Context) (*link.Conn, error) {
			return link.DialContext(ctx, l.Addr())
		}, netClient(t, "fast", 0), fastSpec, fed.ReconnectConfig{MaxAttempts: 5},
			func(r metrics.Round) {
				mu.Lock()
				out.fastAt = append(out.fastAt, time.Now())
				mu.Unlock()
			})
	}()
	go func() {
		conn, err := link.Dial(l.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		_ = fed.ServeClient(ctx, conn, netClient(t, "slow", 1), slowSpec)
	}()

	cfg := fed.ServerConfig{
		ModelConfig:   tinyNetCfg(),
		Seed:          29,
		Rounds:        versions,
		ExpectClients: 2,
		MinClients:    1,
		RoundDeadline: 30 * time.Second,
		Outer:         fed.FedAvg{},
		OnRound: func(r metrics.Round) {
			mu.Lock()
			out.recs = append(out.recs, r)
			out.commitAt = append(out.commitAt, time.Now())
			mu.Unlock()
		},
	}
	if async {
		cfg.Async = &fed.AsyncConfig{K: 1, Alpha: 0.5}
	}
	start := time.Now()
	if _, err := fed.Serve(context.Background(), l, cfg); err != nil {
		t.Fatalf("async=%v server: %v", async, err)
	}
	if cerr := <-fastDone; cerr != nil {
		t.Fatalf("async=%v fast client: %v", async, cerr)
	}
	mu.Lock()
	defer mu.Unlock()
	out.elapsed = time.Since(start)
	if n := len(out.recs); n > 0 {
		out.finalLoss = out.recs[n-1].TrainLoss
	}
	return out
}

// medianInterval returns the median gap between consecutive timestamps.
func medianInterval(ts []time.Time) time.Duration {
	if len(ts) < 2 {
		return 0
	}
	gaps := make([]time.Duration, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i].Sub(ts[i-1]))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}

// commitRate is commits per second between the first and last commit,
// excluding the join/warmup phase before the first one.
func commitRate(ts []time.Time) float64 {
	if len(ts) < 2 {
		return 0
	}
	span := ts[len(ts)-1].Sub(ts[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(ts)-1) / span
}

// TestAsyncStraggler is the headline async acceptance test: with one member
// training 10x more local steps per dispatch, the buffered async mode must
// commit global versions at the fast member's cadence — at least 4x the
// synchronous commit rate, with the median commit interval within 1.5x of
// the fast client's own round interval — and the straggler's late updates
// must land with nonzero recorded staleness rather than gating commits.
// Straggler-fleet shape shared by TestAsyncStraggler and the bench-JSON
// emitter. The step counts are chosen so the slow member is ~10x slower in
// wall time once the fixed per-dispatch overhead (encode/wire/decode of the
// tiny model, ~15ms on loopback) is added to both members' training time.
// The async version count exceeds the step ratio because the straggler's
// first arrival lands at a commit index bounded by the wall-time ratio,
// which can approach the step ratio when compute dominates overhead (e.g.
// under the race detector) — 60 versions guarantee the arrival lands inside
// the run on any machine.
const (
	stragglerFastSteps     = 2
	stragglerSlowSteps     = 100
	stragglerAsyncVersions = 60
	stragglerSyncRounds    = 4
)

func TestAsyncStraggler(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		fastSteps     = stragglerFastSteps
		slowSteps     = stragglerSlowSteps
		asyncVersions = stragglerAsyncVersions
		syncRounds    = stragglerSyncRounds
	)
	async := runStragglerFleet(t, true, asyncVersions, fastSteps, slowSteps)
	syncRun := runStragglerFleet(t, false, syncRounds, fastSteps, slowSteps)

	if len(async.recs) != asyncVersions {
		t.Fatalf("async run committed %d versions, want %d", len(async.recs), asyncVersions)
	}
	for i, r := range async.recs {
		if r.ModelVersion != i+1 {
			t.Fatalf("commit %d carries version %d, want %d", i, r.ModelVersion, i+1)
		}
		if r.BufferFill != 1 {
			t.Fatalf("version %d folded %d updates, want K=1", r.ModelVersion, r.BufferFill)
		}
	}
	if len(syncRun.recs) != syncRounds {
		t.Fatalf("sync control completed %d rounds, want %d", len(syncRun.recs), syncRounds)
	}

	// Straggler no longer gates commit cadence: the async commit rate must
	// beat the barrier-synchronized control by at least 4x in the same
	// fleet (expected ~10x: the sync round waits a straggler-interval, async
	// commits every fast-interval).
	aRate, sRate := commitRate(async.commitAt), commitRate(syncRun.commitAt)
	if aRate < 4*sRate {
		t.Fatalf("async commit rate %.2f/s is not >= 4x sync rate %.2f/s", aRate, sRate)
	}
	t.Logf("commit rates: async %.2f/s, sync %.2f/s (%.1fx)", aRate, sRate, aRate/sRate)

	// Commit cadence tracks the fast client, not the straggler.
	commitMed, fastMed := medianInterval(async.commitAt), medianInterval(async.fastAt)
	if fastMed > 0 && commitMed > fastMed*3/2 {
		t.Fatalf("median commit interval %v exceeds 1.5x the fast client's round interval %v", commitMed, fastMed)
	}

	// The straggler's updates landed late, were staleness-stamped, and were
	// folded anyway (down-weighted) instead of dropped.
	sawStale := false
	for _, r := range async.recs {
		if r.MeanStaleness > 0 {
			sawStale = true
			break
		}
	}
	if !sawStale {
		t.Fatal("no commit recorded nonzero staleness: the straggler's updates never folded")
	}
}

// asyncControlRun completes an uninterrupted async run and returns its
// final params.
func asyncControlRun(t *testing.T, seed int64, versions, k int, outer fed.OuterOpt) []float32 {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		go func(i int) {
			conn, err := link.Dial(l.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			_ = fed.ServeClient(ctx, conn, netClient(t, fmt.Sprintf("d%d", i), i), netSpec())
		}(i)
	}
	res, err := fed.Serve(context.Background(), l, asyncServerConfig(seed, versions, k, outer))
	if err != nil {
		t.Fatalf("async control run: %v", err)
	}
	return res.Global
}

// asyncCrashResumeRun is crashResumeRun's async twin: two resilient clients
// against a WAL-journaling FedBuff aggregator whose failpoint arms after
// version 2 commits; the first life dies on the armed append, the second
// resumes on the same WAL directory — re-folding any journaled mid-buffer
// state — and must reach the final version.
func asyncCrashResumeRun(t *testing.T, site string, seed int64, versions, k int, newOuter func() fed.OuterOpt) (*fed.Result, map[string]map[int]int) {
	t.Helper()
	walDir := t.TempDir()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var mu sync.Mutex
	served := map[string]map[int]int{}
	clientDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("d%d", i)
		go func(i int, id string) {
			clientDone <- fed.RunResilientClient(ctx, func(ctx context.Context) (*link.Conn, error) {
				return link.DialContext(ctx, addr)
			}, netClient(t, id, i), netSpec(), fed.ReconnectConfig{
				MaxAttempts:    100,
				InitialBackoff: 20 * time.Millisecond,
				MaxBackoff:     200 * time.Millisecond,
			}, func(r metrics.Round) {
				mu.Lock()
				if served[id] == nil {
					served[id] = map[int]int{}
				}
				served[id][r.Round]++
				mu.Unlock()
			})
		}(i, id)
	}

	fp := &ckpt.Failpoint{}
	cfg := asyncServerConfig(seed, versions, k, newOuter())
	cfg.WALDir, cfg.Failpoint = walDir, fp
	cfg.OnRound = func(r metrics.Round) {
		if r.Round == 2 {
			fp.Arm(site)
		}
	}
	if _, err := fed.Serve(context.Background(), l, cfg); err == nil || !errors.Is(err, ckpt.ErrFailpoint) {
		t.Fatalf("site %s: first life did not die on the armed crash point: %v", site, err)
	}
	if !fp.Fired() {
		t.Fatalf("site %s: failpoint armed but never fired", site)
	}

	l2, err := link.Listen(addr)
	if err != nil {
		t.Fatalf("site %s: re-listen on %s: %v", site, addr, err)
	}
	defer l2.Close()
	cfg2 := asyncServerConfig(seed, versions, k, newOuter())
	cfg2.WALDir = walDir
	res, err := fed.Serve(context.Background(), l2, cfg2)
	if err != nil {
		t.Fatalf("site %s: resumed run: %v", site, err)
	}
	for i := 0; i < 2; i++ {
		if cerr := <-clientDone; cerr != nil {
			t.Fatalf("site %s: resilient client: %v", site, cerr)
		}
	}
	if res.History.Len() == 0 || res.History.Rounds[res.History.Len()-1].Round != versions {
		t.Fatalf("site %s: resumed run did not reach version %d: %d records", site, versions, res.History.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	return res, served
}

// TestAsyncCrashPointSweep kills and restarts the async aggregator after
// each async WAL record type — including mid-buffer, after a buffer_fold
// landed but before its version committed — and asserts recovery each time:
// the resumed run re-folds the journaled pending buffer, completes all
// versions, never trains a client round twice (version-matched cached
// redelivery), and matches the uninterrupted control within 1e-5. FedMom is
// the outer optimizer so momentum snapshots are exercised; K equals the
// cohort so every version's buffer is an unordered pair and the refold is
// bit-exact regardless of arrival order.
func TestAsyncCrashPointSweep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const (
		seed     = 83
		versions = 5
		k        = 2
	)
	newOuter := func() fed.OuterOpt { return fed.NewFedMom(1, 0.9) }
	control := asyncControlRun(t, seed, versions, k, newOuter())

	// round_open is excluded: async journals it only as the task-ID lease,
	// which tops up on its own schedule rather than once per version, so an
	// armed failpoint there is not guaranteed to fire.
	sites := []ckpt.RecordType{
		ckpt.RecBufferFold, ckpt.RecOuterStep,
		ckpt.RecStateSnapshot, ckpt.RecVersionCommit,
	}
	for _, rt := range sites {
		site := "wal:" + rt.String()
		t.Run(rt.String(), func(t *testing.T) {
			res, served := asyncCrashResumeRun(t, site, seed, versions, k, newOuter)
			assertNoDoubleTraining(t, site, served)
			if diff := maxAbsDiff(control, res.Global); diff > 1e-5 {
				t.Fatalf("site %s: resumed async run diverged from control: max |Δ| = %g", site, diff)
			}
		})
	}
}

// TestWriteAsyncBenchJSON emits the async-vs-sync straggler measurement as
// machine-readable JSON when BENCH_ASYNC_JSON names an output path — the CI
// hook behind the BENCH_async.json trajectory artifact. It reuses the exact
// fleet TestAsyncStraggler runs, so the artifact and the test can never
// drift apart.
func TestWriteAsyncBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ASYNC_JSON")
	if path == "" {
		t.Skip("BENCH_ASYNC_JSON not set")
	}
	const (
		fastSteps     = stragglerFastSteps
		slowSteps     = stragglerSlowSteps
		asyncVersions = stragglerAsyncVersions
		syncRounds    = stragglerSyncRounds
	)
	async := runStragglerFleet(t, true, asyncVersions, fastSteps, slowSteps)
	syncRun := runStragglerFleet(t, false, syncRounds, fastSteps, slowSteps)
	var staleSum float64
	for _, r := range async.recs {
		staleSum += r.MeanStaleness
	}
	aRate, sRate := commitRate(async.commitAt), commitRate(syncRun.commitAt)
	report := struct {
		AsyncVersions      int     `json:"async_versions"`
		SyncRounds         int     `json:"sync_rounds"`
		StragglerRatio     int     `json:"straggler_step_ratio"`
		AsyncCommitsPerSec float64 `json:"async_commits_per_sec"`
		SyncCommitsPerSec  float64 `json:"sync_commits_per_sec"`
		CommitSpeedup      float64 `json:"commit_rate_speedup"`
		AsyncMeanStaleness float64 `json:"async_mean_staleness"`
		AsyncFinalLoss     float64 `json:"async_final_train_loss"`
		SyncFinalLoss      float64 `json:"sync_final_train_loss"`
		Comment            string  `json:"comment"`
	}{
		AsyncVersions:      asyncVersions,
		SyncRounds:         syncRounds,
		StragglerRatio:     slowSteps / fastSteps,
		AsyncCommitsPerSec: aRate,
		SyncCommitsPerSec:  sRate,
		CommitSpeedup:      aRate / sRate,
		AsyncMeanStaleness: staleSum / float64(len(async.recs)),
		AsyncFinalLoss:     async.finalLoss,
		SyncFinalLoss:      syncRun.finalLoss,
		Comment:            "2-client TCP loopback fleet with a 10x compute straggler: FedBuff (K=1, alpha=0.5) commit rate vs the barrier-synchronized control, tiny model",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx commit speedup", path, report.CommitSpeedup)
}
