module photon

go 1.24
