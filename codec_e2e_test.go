package photon

// End-to-end tests for the pluggable wire-codec API: lossy codecs must
// actually shrink measured communication without destroying convergence,
// and codec-mismatched fleets must fail fast at join time.

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// runCodecJob runs a small in-process federated job under the named codec
// and returns its result.
func runCodecJob(t *testing.T, codec string) *Result {
	t.Helper()
	res, err := NewJob(
		WithCodec(codec),
		WithClients(2),
		WithRounds(10),
		WithSeed(9),
		WithEvalEvery(10),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("codec %q: %v", codec, err)
	}
	return res
}

func sumComm(res *Result) int64 {
	var total int64
	for _, s := range res.Stats {
		total += s.CommBytes
	}
	return total
}

// TestCodecQ8ShrinksCommAndConverges is the acceptance scenario for the q8
// codec: a federated run whose every exchanged payload is int8
// block-quantized must converge to within 5% of the dense baseline's final
// perplexity while paying at most 30% of its communication bytes.
func TestCodecQ8ShrinksCommAndConverges(t *testing.T) {
	dense := runCodecJob(t, "dense")
	q8 := runCodecJob(t, "q8")

	denseBytes, q8Bytes := sumComm(dense), sumComm(q8)
	if denseBytes <= 0 || q8Bytes <= 0 {
		t.Fatalf("missing comm accounting: dense=%d q8=%d", denseBytes, q8Bytes)
	}
	if ratio := float64(q8Bytes) / float64(denseBytes); ratio > 0.30 {
		t.Fatalf("q8 wire bytes are %.1f%% of dense, want <= 30%%", 100*ratio)
	}
	for _, s := range q8.Stats {
		if s.CompressionRatio <= 0 || s.CompressionRatio > 0.30 {
			t.Fatalf("round %d compression ratio %.3f, want (0, 0.30]", s.Round, s.CompressionRatio)
		}
	}
	dPPL, qPPL := dense.FinalPerplexity, q8.FinalPerplexity
	if math.IsInf(dPPL, 1) || math.IsInf(qPPL, 1) {
		t.Fatalf("missing perplexity: dense=%v q8=%v", dPPL, qPPL)
	}
	if rel := math.Abs(qPPL-dPPL) / dPPL; rel > 0.05 {
		t.Fatalf("q8 perplexity %.3f deviates %.1f%% from dense %.3f, want <= 5%%", qPPL, 100*rel, dPPL)
	}
}

// TestCodecTopKConvergesWithErrorFeedback: at 10% density the topk codec
// must still train (no divergence) because dropped coordinates are carried
// forward by the client-side residual, and its updates must be far smaller
// than dense.
func TestCodecTopKConvergesWithErrorFeedback(t *testing.T) {
	res, err := NewJob(
		WithCodec("topk:0.1"),
		WithClients(2),
		WithRounds(12),
		WithSeed(9),
		WithEvalEvery(4),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 12 {
		t.Fatalf("completed %d rounds", len(res.Stats))
	}
	first, last := res.Stats[0].TrainLoss, res.Stats[len(res.Stats)-1].TrainLoss
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("topk run diverged: final loss %v", last)
	}
	if !(last < first) {
		t.Fatalf("topk run did not learn: loss %v -> %v", first, last)
	}
	if ppl := res.FinalPerplexity; math.IsNaN(ppl) || math.IsInf(ppl, 0) || ppl <= 0 {
		t.Fatalf("topk perplexity %v", ppl)
	}
	// Updates are 10% density at 8 bytes/pair; the model broadcast falls
	// back to flate, so the total must still be well under dense.
	for _, s := range res.Stats {
		if s.CompressionRatio <= 0 || s.CompressionRatio >= 1 {
			t.Fatalf("round %d ratio %.3f, want within (0,1)", s.Round, s.CompressionRatio)
		}
	}
}

// TestCodecNetworkedWireBytes measures real wire traffic (per-connection
// byte counters, frame headers included) of an aggregator/client federation
// under q8 versus dense, and requires the 30% bound end to end over TCP.
func TestCodecNetworkedWireBytes(t *testing.T) {
	run := func(codec string) *Result {
		const clients = 2
		agg := NewJob(
			WithBackend(BackendAggregator),
			WithAddr("127.0.0.1:0"),
			WithExpectClients(clients),
			WithRounds(3),
			WithCodec(codec),
			WithSeed(33),
		)
		resCh := make(chan *Result, 1)
		errCh := make(chan error, 1)
		go func() {
			res, err := agg.Run(context.Background())
			resCh <- res
			errCh <- err
		}()
		var addr string
		for i := 0; i < 200 && addr == ""; i++ {
			addr = agg.Addr()
			time.Sleep(25 * time.Millisecond)
		}
		if addr == "" {
			t.Fatal("aggregator never bound")
		}
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := NewJob(
					WithBackend(BackendClient),
					WithAddr(addr),
					WithClientID(string(rune('a'+i))),
					WithShard(i),
				).Run(context.Background())
				if err != nil {
					t.Errorf("client %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		res, err := <-resCh, <-errCh
		if err != nil {
			t.Fatalf("aggregator (%s): %v", codec, err)
		}
		return res
	}

	dense := run("dense")
	q8 := run("q8")
	denseBytes, q8Bytes := sumComm(dense), sumComm(q8)
	if denseBytes <= 0 || q8Bytes <= 0 {
		t.Fatalf("missing measured wire bytes: dense=%d q8=%d", denseBytes, q8Bytes)
	}
	// Sanity: the measured totals must split into both directions.
	for _, s := range dense.Stats {
		if s.WireSentBytes <= 0 || s.WireRecvBytes <= 0 {
			t.Fatalf("round %d wire accounting one-sided: %+v", s.Round, s)
		}
	}
	if ratio := float64(q8Bytes) / float64(denseBytes); ratio > 0.30 {
		t.Fatalf("q8 measured wire bytes are %.1f%% of dense, want <= 30%%", 100*ratio)
	}
}

// TestCodecMismatchFailsFast: a client that requires a codec different from
// the aggregator's announcement must error out at join time with a clear
// message, not corrupt rounds or hang.
func TestCodecMismatchFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agg := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(1),
		WithRounds(1),
		WithCodec("q8"),
	)
	aggDone := make(chan error, 1)
	go func() {
		_, err := agg.Run(ctx)
		aggDone <- err
	}()
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		addr = agg.Addr()
		time.Sleep(25 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("aggregator never bound")
	}

	_, err := NewJob(
		WithBackend(BackendClient),
		WithAddr(addr),
		WithClientID("strict"),
		WithCodec("dense"), // disagrees with the aggregator's q8
		WithReconnect(0),
	).Run(context.Background())
	if err == nil {
		t.Fatal("codec-mismatched client joined")
	}
	if !strings.Contains(err.Error(), "mismatch") || !strings.Contains(err.Error(), "q8") {
		t.Fatalf("mismatch error not descriptive: %v", err)
	}
	cancel()
	<-aggDone
}
