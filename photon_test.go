package photon

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"photon/internal/ckpt"
)

func TestPretrainDefaultsConverge(t *testing.T) {
	res, err := Pretrain(Options{Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 8 {
		t.Fatalf("want 8 rounds of stats, got %d", len(res.Stats))
	}
	if res.FinalPerplexity >= 55 {
		t.Fatalf("default run did not learn: ppl %v", res.FinalPerplexity)
	}
	if res.NumParams() < 1000 {
		t.Fatalf("model too small: %d params", res.NumParams())
	}
}

func TestPretrainUnknownSize(t *testing.T) {
	if _, err := Pretrain(Options{Size: "enormous"}); err == nil {
		t.Fatal("unknown size accepted")
	}
	if _, err := ModelConfig(Size7B); err != nil {
		t.Fatal(err)
	}
}

func TestPretrainServerOptimizers(t *testing.T) {
	for _, s := range []ServerOptimizer{FedAvg, FedMom, DiLoCo} {
		res, err := Pretrain(Options{Rounds: 2, Server: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(res.Stats) != 2 {
			t.Fatalf("%s: %d stats", s, len(res.Stats))
		}
	}
	if _, err := Pretrain(Options{Server: "adamw"}); err == nil {
		t.Fatal("invalid server optimizer accepted")
	}
}

func TestPretrainHeterogeneous(t *testing.T) {
	res, err := Pretrain(Options{Rounds: 4, Heterogeneous: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPerplexity >= 64 {
		t.Fatalf("heterogeneous run did not learn: %v", res.FinalPerplexity)
	}
}

func TestPretrainCheckpointAndGenerate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.ckpt")
	res, err := Pretrain(Options{Rounds: 3, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(path); err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
	toks := res.Generate(7, []int{1, 2, 3}, 12, 0.8)
	if len(toks) != 12 {
		t.Fatalf("generated %d tokens", len(toks))
	}
}

func TestPretrainCentralized(t *testing.T) {
	res, err := PretrainCentralized(CentralizedOptions{Steps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPerplexity >= 50 {
		t.Fatalf("centralized baseline did not learn: %v", res.FinalPerplexity)
	}
	if _, err := PretrainCentralized(CentralizedOptions{Size: "nope"}); err == nil {
		t.Fatal("unknown size accepted")
	}
	if _, err := PretrainCentralized(CentralizedOptions{Workers: 100}); err == nil {
		t.Fatal("too many workers accepted")
	}
}

func TestPlanDeployment(t *testing.T) {
	plans, err := PlanDeployment(Size125M, nil, 512, 2, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("want 3 topology plans, got %d", len(plans))
	}
	var selected *TopologyPlan
	for i := range plans {
		if plans[i].Selected {
			if selected != nil {
				t.Fatal("multiple plans selected")
			}
			selected = &plans[i]
		}
	}
	if selected == nil {
		t.Fatal("no plan selected")
	}
	if selected.Topology != "RAR" {
		t.Fatalf("unconstrained deployment should pick RAR, got %s", selected.Topology)
	}

	// Privacy constraint forces PS.
	plans, err = PlanDeployment(Size125M, nil, 512, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Selected && p.Topology != "PS" {
			t.Fatalf("privacy-constrained deployment picked %s", p.Topology)
		}
		if p.Topology != "PS" && p.RuledOutReason == "" {
			t.Fatalf("%s should be ruled out under privacy constraints", p.Topology)
		}
	}

	// Dropout risk excludes RAR.
	plans, err = PlanDeployment(Size125M, nil, 512, 2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Topology == "RAR" && p.RuledOutReason == "" {
			t.Fatal("RAR should be ruled out under dropout risk")
		}
	}

	if _, err := PlanDeployment(Size125M, nil, 0, 2, true, false); err == nil {
		t.Fatal("invalid localSteps accepted")
	}
}

func TestPlanDeploymentCommScaling(t *testing.T) {
	// 7B comm time must dwarf 125M comm time at the same topology.
	small, err := PlanDeployment(Size125M, nil, 512, 2, true, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := PlanDeployment(Size7B, nil, 512, 0.032, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(big[0].CommSeconds > 10*small[0].CommSeconds) {
		t.Fatalf("7B comm %v should dwarf 125M comm %v", big[0].CommSeconds, small[0].CommSeconds)
	}
	if math.IsNaN(big[0].CommShare) || big[0].CommShare <= 0 || big[0].CommShare >= 1 {
		t.Fatalf("bad comm share %v", big[0].CommShare)
	}
}

func TestNetworkedAggregatorAndClients(t *testing.T) {
	const clients = 2
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := ServeAggregator(AggregatorOptions{
			Addr: "127.0.0.1:39077", Rounds: 3, ExpectClients: clients, Compress: true,
		})
		resCh <- res
		errCh <- err
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Retry until the aggregator is listening.
			for attempt := 0; attempt < 50; attempt++ {
				err := JoinAsClient(ClientOptions{
					Addr: "127.0.0.1:39077", ID: string(rune('a' + i)), Shard: i, Compress: true,
				})
				if err == nil {
					return
				}
			}
			t.Errorf("client %d never joined", i)
		}(i)
	}
	wg.Wait()
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("want 3 rounds, got %d", len(res.Stats))
	}
	for _, s := range res.Stats {
		if s.Clients != clients {
			t.Fatalf("round %d: %d clients", s.Round, s.Clients)
		}
	}
}

func TestJoinAsClientValidation(t *testing.T) {
	if err := JoinAsClient(ClientOptions{Addr: "127.0.0.1:1", Shard: 99, ID: "x"}); err == nil {
		t.Fatal("bad shard accepted")
	}
	if err := JoinAsClient(ClientOptions{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if err := ServeAggregatorErr(); err == nil {
		t.Fatal("ExpectClients=0 accepted")
	}
}

// ServeAggregatorErr exercises the ExpectClients validation without binding
// a socket.
func ServeAggregatorErr() error {
	_, err := ServeAggregator(AggregatorOptions{Addr: "127.0.0.1:0", ExpectClients: 0})
	return err
}
