package photon

// Tests for the Job API surface: context cancellation with partial results,
// live event streaming, registry-based extension points, and resume
// through the new entry point.

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/data"
	"photon/internal/metrics"
)

func TestJobCancellationReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := NewJob(WithRounds(500)) // far more rounds than can finish

	// Cancel as soon as two rounds have been observed live.
	go func() {
		seen := 0
		for range job.Events() {
			seen++
			if seen == 2 {
				cancel()
				return
			}
		}
	}()

	start := time.Now()
	res, err := job.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancellation must still return the partial result")
	}
	if len(res.Stats) < 2 || len(res.Stats) >= 500 {
		t.Fatalf("partial result should hold the completed rounds, got %d", len(res.Stats))
	}
	// The run must stop promptly (mid-round), not drain the remaining
	// hundreds of rounds.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation was not prompt: took %v", elapsed)
	}
	if res.NumParams() == 0 {
		t.Fatal("partial result should carry the in-progress model")
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := NewJob(WithRounds(500)).Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res == nil {
		t.Fatal("deadline must still return the partial result")
	}
}

func TestJobEventsOrderAndClose(t *testing.T) {
	job := NewJob(WithRounds(6))

	var mu sync.Mutex
	var events []RoundEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range job.Events() { // terminates only if the channel closes
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()

	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("events channel was not closed when Run returned")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 6 {
		t.Fatalf("want 6 events, got %d", len(events))
	}
	for i, ev := range events {
		if ev.Round != i+1 {
			t.Fatalf("event %d out of order: round %d", i, ev.Round)
		}
		if ev.Clients <= 0 {
			t.Fatalf("round %d: no participating clients reported", ev.Round)
		}
		if ev.CommBytes <= 0 {
			t.Fatalf("round %d: no communication accounted", ev.Round)
		}
		if ev.Perplexity <= 0 {
			t.Fatalf("round %d: expected an evaluated perplexity", ev.Round)
		}
	}
	if events[len(events)-1].Perplexity != res.FinalPerplexity {
		t.Fatalf("final event ppl %v != result ppl %v",
			events[len(events)-1].Perplexity, res.FinalPerplexity)
	}
}

func TestJobCentralizedBackendEvents(t *testing.T) {
	job := NewJob(WithBackend(BackendCentralized), WithSteps(60))
	var events []RoundEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range job.Events() {
			events = append(events, ev)
		}
	}()
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if len(events) != 6 { // 60 steps / eval every 10
		t.Fatalf("want 6 eval events, got %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Round <= events[i-1].Round {
			t.Fatalf("events out of order: %d then %d", events[i-1].Round, events[i].Round)
		}
	}
	if res.FinalPerplexity >= 50 {
		t.Fatalf("centralized job did not learn: %v", res.FinalPerplexity)
	}
}

func TestJobUnknownRegistryNames(t *testing.T) {
	_, err := NewJob(WithServerOptimizer("adamw")).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "adamw") {
		t.Fatalf("unknown server optimizer not reported cleanly: %v", err)
	}
	_, err = NewJob(WithDataSource("wikipedia")).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "wikipedia") {
		t.Fatalf("unknown data source not reported cleanly: %v", err)
	}
	_, err = NewJob(WithBackend(Backend("quantum"))).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Fatalf("unknown backend not reported cleanly: %v", err)
	}
}

func TestJobInvalidCountsErrorNotPanic(t *testing.T) {
	if _, err := NewJob(WithRounds(-5)).Run(context.Background()); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := NewJob(WithBackend(BackendCentralized), WithSteps(-50)).Run(context.Background()); err == nil {
		t.Fatal("negative steps accepted")
	}
}

func TestJobSingleUse(t *testing.T) {
	job := NewJob(WithRounds(1))
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err == nil {
		t.Fatal("second Run on the same job must error")
	}
}

// halfAvg is a custom server optimizer: FedAvg at half the server rate.
type halfAvg struct{}

func (halfAvg) Name() string { return "halfavg" }
func (halfAvg) Step(global, delta []float32, _ int) {
	for i, d := range delta {
		global[i] -= 0.5 * d
	}
}

func TestRegisterServerOptimizer(t *testing.T) {
	RegisterServerOptimizer("halfavg", func() OuterOptimizer { return halfAvg{} })
	res, err := NewJob(WithServerOptimizer("halfavg"), WithRounds(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("custom optimizer run: %d stats", len(res.Stats))
	}
	found := false
	for _, name := range ServerOptimizers() {
		if name == "halfavg" {
			found = true
		}
	}
	if !found {
		t.Fatal("halfavg not listed in ServerOptimizers()")
	}
}

func TestRegisterDataSource(t *testing.T) {
	RegisterDataSource("arxiv-only", func(vocab int) []Source {
		return []Source{data.NewMarkovSource("arxiv-only", vocab, 3, 1.6, 42)}
	})
	res, err := NewJob(WithDataSource("arxiv-only"), WithRounds(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("custom data source run: %d stats", len(res.Stats))
	}
}

func TestJobResumeKeepsRoundNumbering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ckpt")
	first, err := NewJob(WithRounds(3), WithCheckpoint(path)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Stats[len(first.Stats)-1].Round; got != 3 {
		t.Fatalf("first run ended at round %d, want 3", got)
	}

	job := NewJob(WithRounds(3), WithResume(path))
	var rounds []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range job.Events() {
			rounds = append(rounds, ev.Round)
		}
	}()
	resumed, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-done

	// Round numbering continues from the checkpoint in both the result
	// stats and the live event stream.
	want := []int{4, 5, 6}
	if len(resumed.Stats) != len(want) || len(rounds) != len(want) {
		t.Fatalf("resumed run: %d stats, %d events, want 3", len(resumed.Stats), len(rounds))
	}
	for i, w := range want {
		if resumed.Stats[i].Round != w {
			t.Fatalf("resumed stats[%d].Round = %d, want %d", i, resumed.Stats[i].Round, w)
		}
		if rounds[i] != w {
			t.Fatalf("resumed event %d round = %d, want %d", i, rounds[i], w)
		}
	}
	// And the resumed model starts from checkpointed quality.
	cold := first.Stats[0].Perplexity
	warm := resumed.Stats[0].Perplexity
	if !(warm < cold) {
		t.Fatalf("resume lost progress: cold-start ppl %v, resumed first ppl %v", cold, warm)
	}
}

func TestJobAggregatorCancelledWhileWaiting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"),
		WithExpectClients(2), // nobody will join
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("aggregator shutdown was not prompt: %v", elapsed)
	}
}

func TestJobNetworkedBackends(t *testing.T) {
	const clients = 2

	agg := NewJob(
		WithBackend(BackendAggregator),
		WithAddr("127.0.0.1:0"), // kernel-assigned free port, reported by Addr()
		WithExpectClients(clients),
		WithRounds(3),
		WithCompression(true),
	)
	var aggEvents []RoundEvent
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range agg.Events() {
			aggEvents = append(aggEvents, ev)
		}
	}()
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := agg.Run(context.Background())
		resCh <- res
		errCh <- err
	}()

	// Wait for the aggregator to report its bound address.
	var addr string
	for attempt := 0; addr == ""; attempt++ {
		if attempt > 100 {
			t.Fatal("aggregator never started listening")
		}
		addr = agg.Addr()
		time.Sleep(50 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := NewJob(
				WithBackend(BackendClient),
				WithAddr(addr),
				WithClientID(string(rune('a'+i))),
				WithShard(i),
				WithCompression(true),
			).Run(context.Background())
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	res, err := <-resCh, <-errCh
	if err != nil {
		t.Fatal(err)
	}
	<-eventsDone
	if len(res.Stats) != 3 {
		t.Fatalf("aggregator ran %d rounds, want 3", len(res.Stats))
	}
	if len(aggEvents) != 3 {
		t.Fatalf("aggregator emitted %d events, want 3", len(aggEvents))
	}
	for i, ev := range aggEvents {
		if ev.Round != i+1 {
			t.Fatalf("aggregator event %d round %d", i, ev.Round)
		}
		if ev.Clients != clients {
			t.Fatalf("round %d aggregated %d clients, want %d", ev.Round, ev.Clients, clients)
		}
	}
}

// TestJobEventsDropOldest pins the event-stream backpressure policy: when
// the buffer fills (a backend outliving its sizing estimate), emit evicts
// the oldest buffered event rather than the newest, so a late consumer
// reads the freshest telemetry — and the evictions are auditable through
// the dropped counter that Run surfaces as Result.DroppedEvents.
func TestJobEventsDropOldest(t *testing.T) {
	j := &Job{events: make(chan RoundEvent, 3)}
	for r := 1; r <= 10; r++ {
		j.emit(metrics.Round{Round: r})
	}
	close(j.events)
	var got []int
	for ev := range j.events {
		got = append(got, ev.Round)
	}
	want := []int{8, 9, 10} // newest survive; 1..7 were evicted
	if len(got) != len(want) {
		t.Fatalf("buffered rounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buffered rounds = %v, want %v", got, want)
		}
	}
	if n := j.dropped.Load(); n != 7 {
		t.Fatalf("dropped counter = %d, want 7", n)
	}
}

// TestJobEventsDropOldestRacesConsumer exercises the evict-retry loop under
// a live consumer draining concurrently: every emitted event is either
// received or counted dropped — none vanish unaccounted.
func TestJobEventsDropOldestRacesConsumer(t *testing.T) {
	const total = 5000
	j := &Job{events: make(chan RoundEvent, 2)}
	var received int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range j.events {
			received++
		}
	}()
	for r := 1; r <= total; r++ {
		j.emit(metrics.Round{Round: r})
	}
	close(j.events)
	<-done
	if got := received + j.dropped.Load(); got != total {
		t.Fatalf("received %d + dropped %d = %d events, want %d", received, j.dropped.Load(), got, total)
	}
}
