package photon

import "time"

// Backend selects the execution engine a Job runs on.
type Backend string

// Available backends.
const (
	// BackendFederated runs Algorithm 1 end to end in a single process:
	// the default, and the paper's main experimental harness.
	BackendFederated Backend = "federated"
	// BackendCentralized runs the matched centralized/DDP baseline
	// (Algorithm 2).
	BackendCentralized Backend = "centralized"
	// BackendAggregator serves a real networked aggregator on WithAddr,
	// coordinating WithExpectClients remote clients over the wire protocol.
	BackendAggregator Backend = "aggregator"
	// BackendClient joins a networked aggregator at WithAddr and serves
	// training rounds until the session ends.
	BackendClient Backend = "client"
)

// jobConfig is the resolved configuration a Job runs with. Zero values are
// filled with per-backend defaults at Run time.
type jobConfig struct {
	backend Backend
	size    ModelSize

	clients         int
	clientsPerRound int
	rounds          int
	localSteps      int
	batchSize       int
	seqLen          int

	steps   int // centralized: optimizer steps
	workers int // centralized: DDP workers

	maxLR      float64
	server     string
	dataSource string

	dropoutProb    float64
	clipUpdateNorm float64
	checkpointPath string
	resumeFrom     string
	stopAtPPL      float64
	evalEvery      int
	seed           int64

	addr          string
	expectClients int
	clientID      string
	shard         int
	codec         string
	codecSet      bool
	compress      bool

	parent        string
	tiers         int
	relays        int
	upstreamCodec string

	heartbeat     time.Duration
	roundDeadline time.Duration
	minClients    int
	overProvision float64
	reconnect     int
	reconnectSet  bool

	walDir      string
	registryDir string

	asyncSet   bool
	asyncK     int
	asyncAlpha float64
}

// JobOption configures a Job; build them with the With* constructors.
type JobOption func(*jobConfig)

// WithBackend selects the execution engine (default BackendFederated).
func WithBackend(b Backend) JobOption { return func(c *jobConfig) { c.backend = b } }

// WithModel selects the model architecture preset (default SizeTiny).
func WithModel(size ModelSize) JobOption { return func(c *jobConfig) { c.size = size } }

// WithClients sets the federation population N (default 4).
func WithClients(n int) JobOption { return func(c *jobConfig) { c.clients = n } }

// WithClientsPerRound sets the per-round cohort size K (default: all
// clients, i.e. full participation).
func WithClientsPerRound(k int) JobOption { return func(c *jobConfig) { c.clientsPerRound = k } }

// WithRounds sets the number of federated rounds (default 20 for the
// federated backend, 10 for the aggregator).
func WithRounds(r int) JobOption { return func(c *jobConfig) { c.rounds = r } }

// WithLocalSteps sets τ, the local steps per round (default 16).
func WithLocalSteps(tau int) JobOption { return func(c *jobConfig) { c.localSteps = tau } }

// WithBatchSize sets the hardware-determined local batch size Bl (default 4
// federated, 16 centralized).
func WithBatchSize(b int) JobOption { return func(c *jobConfig) { c.batchSize = b } }

// WithSeqLen sets the training sequence length (default 16).
func WithSeqLen(n int) JobOption { return func(c *jobConfig) { c.seqLen = n } }

// WithSteps sets the centralized backend's optimizer step count
// (default 320).
func WithSteps(n int) JobOption { return func(c *jobConfig) { c.steps = n } }

// WithWorkers sets the centralized backend's DDP worker count (default 1).
func WithWorkers(n int) JobOption { return func(c *jobConfig) { c.workers = n } }

// WithMaxLR sets the peak learning rate (default 3e-3, the high-LR recipe).
func WithMaxLR(lr float64) JobOption { return func(c *jobConfig) { c.maxLR = lr } }

// WithServerOptimizer selects the registered server optimizer by name
// (default "fedavg"; see RegisterServerOptimizer).
func WithServerOptimizer(name string) JobOption { return func(c *jobConfig) { c.server = name } }

// WithDataSource selects the registered training corpus by name (default
// "c4"; see RegisterDataSource). Multi-source corpora such as "pile" give
// each client one distinct source, modeling cross-client heterogeneity.
func WithDataSource(name string) JobOption { return func(c *jobConfig) { c.dataSource = name } }

// WithDropout injects per-round client failures with probability p.
func WithDropout(p float64) JobOption { return func(c *jobConfig) { c.dropoutProb = p } }

// WithClipUpdateNorm applies NaN-guarding and L2-clipping post-processing
// to client updates before aggregation (0 disables).
func WithClipUpdateNorm(maxNorm float64) JobOption {
	return func(c *jobConfig) { c.clipUpdateNorm = maxNorm }
}

// WithCheckpoint enables per-round async checkpointing of the global model.
func WithCheckpoint(path string) JobOption { return func(c *jobConfig) { c.checkpointPath = path } }

// WithResume loads a checkpoint written via WithCheckpoint and continues
// from it: the global model is restored and round numbering (and the
// learning-rate schedule) picks up where the checkpoint left off.
func WithResume(path string) JobOption { return func(c *jobConfig) { c.resumeFrom = path } }

// WithStopAtPPL halts training once validation perplexity reaches the
// target (0 disables early stopping).
func WithStopAtPPL(target float64) JobOption { return func(c *jobConfig) { c.stopAtPPL = target } }

// WithEvalEvery evaluates validation perplexity every n rounds (default 1
// federated, 10 centralized).
func WithEvalEvery(n int) JobOption { return func(c *jobConfig) { c.evalEvery = n } }

// WithSeed sets the run seed (default 1).
func WithSeed(seed int64) JobOption { return func(c *jobConfig) { c.seed = seed } }

// WithAddr sets the network address: the listen address for
// BackendAggregator (e.g. ":9000"), the aggregator address for
// BackendClient.
func WithAddr(addr string) JobOption { return func(c *jobConfig) { c.addr = addr } }

// WithExpectClients makes the aggregator backend block until this many
// clients join before training starts.
func WithExpectClients(n int) JobOption { return func(c *jobConfig) { c.expectClients = n } }

// WithClientID sets the client backend's identity.
func WithClientID(id string) JobOption { return func(c *jobConfig) { c.clientID = id } }

// WithShard sets which of the 64 corpus shards the client backend holds.
func WithShard(shard int) JobOption { return func(c *jobConfig) { c.shard = shard } }

// WithCodec selects the wire codec parameter payloads travel in: "dense"
// (raw float32, the default), "flate" (lossless compression), "q8" (int8
// block quantization, ~4x smaller, lossy), "topk" (error-feedback sparse
// top-k, update-only; "topk:0.05" keeps 5%), or any codec added via
// RegisterCodec. The federated backend routes all exchanged payloads
// through the codec; the aggregator backend announces it at join time and
// clients ack, so mixed fleets fail fast. On the client backend a set
// codec is a requirement check against the aggregator's announcement —
// leave it unset to accept whatever the aggregator runs.
func WithCodec(name string) JobOption {
	return func(c *jobConfig) { c.codec = name; c.codecSet = true }
}

// WithCompression flate-compresses parameter payloads on the wire
// (networked backends).
//
// Deprecated: use WithCodec("flate"); WithCompression(true) is now exactly
// that, and WithCodec also unlocks the lossy q8/topk codecs. An explicit
// WithCodec wins when both are given.
func WithCompression(on bool) JobOption { return func(c *jobConfig) { c.compress = on } }

// WithParent turns the aggregator backend into a relay: the job still
// listens on WithAddr and serves its WithExpectClients cohort with the full
// elastic machinery, but instead of running its own round loop it joins the
// parent aggregator at addr as an ordinary client — each parent round it
// re-broadcasts the global model down, aggregates its cohort locally
// (FedAvg ηs=1 mean semantics, so a two-tier mean of equal cohorts equals
// the flat mean), and forwards one pseudo-gradient upward. WithCodec names
// the cohort-tier codec; WithUpstreamCodec pins the parent-tier one. The
// relay's round telemetry carries Tier 1.
func WithParent(addr string) JobOption { return func(c *jobConfig) { c.parent = addr } }

// WithTiers selects the federated backend's aggregation depth: 1 (default)
// is the flat Algorithm 1 loop, 2 simulates hierarchical aggregation — the
// cohort folds into WithRelays group means first and the server optimizer
// consumes the mean of relay means, with the parent tier's wire traffic
// accounted under WithUpstreamCodec.
func WithTiers(n int) JobOption { return func(c *jobConfig) { c.tiers = n } }

// WithRelays sets the number of relay groups for WithTiers(2) (default 2).
func WithRelays(n int) JobOption { return func(c *jobConfig) { c.relays = n } }

// WithUpstreamCodec names the relay→root tier's wire codec. On the
// federated backend it drives the tiered simulation's parent-tier encoding
// (default: same as WithCodec); on a relay job (WithParent) it is a strict
// requirement against the parent's announced codec — leave it unset to
// accept whatever the parent runs.
func WithUpstreamCodec(name string) JobOption {
	return func(c *jobConfig) { c.upstreamCodec = name }
}

// WithPlan applies a planned hierarchy (see PlanHierarchy) to the job: the
// tier count, relay count, and upstream codec are taken from the plan. On
// the aggregator backend it also provides the expected cohort size (the
// plan's relay count) when WithExpectClients was not given explicitly.
func WithPlan(p *HierarchyPlan) JobOption {
	return func(c *jobConfig) {
		if p == nil {
			return
		}
		c.tiers = p.Tiers
		if n := len(p.Relays); n > 0 {
			c.relays = n
			if c.expectClients == 0 {
				c.expectClients = n
			}
		}
		if p.Tiers > 1 && p.UpstreamCodec != "" {
			c.upstreamCodec = p.UpstreamCodec
		}
	}
}

// WithHeartbeat enables heartbeat liveness tracking on the aggregator
// backend: every member is pinged on this cadence and evicted after three
// consecutive missed beats. Clients echo heartbeats automatically, even
// mid-training, so a slow member reads as alive-but-straggling rather than
// dead. Zero (the default) disables heartbeats.
func WithHeartbeat(interval time.Duration) JobOption {
	return func(c *jobConfig) { c.heartbeat = interval }
}

// WithRoundDeadline bounds one federated round's model/update exchange on
// the aggregator backend. When the deadline expires the round aggregates
// the updates that arrived and counts the missing cohort members as
// stragglers (down-weighting their future sampling) instead of blocking
// forever. Zero (the default) waits until every cohort member answers or
// fails.
func WithRoundDeadline(d time.Duration) JobOption {
	return func(c *jobConfig) { c.roundDeadline = d }
}

// WithMinClients sets the aggregator backend's mid-run participation
// floor: after training starts, a round does not begin until at least this
// many members are alive, giving crashed clients a window to reconnect
// (default 1).
func WithMinClients(n int) JobOption { return func(c *jobConfig) { c.minClients = n } }

// WithOverProvision inflates the aggregator backend's sampled cohort by
// this fraction (0.25 → 25% extra members) so a round deadline with
// stragglers still collects about K updates.
func WithOverProvision(f float64) JobOption { return func(c *jobConfig) { c.overProvision = f } }

// WithReconnect sets how many consecutive failed reconnect attempts the
// client backend tolerates before abandoning a session that lost its
// aggregator connection (exponential backoff between attempts; default 5;
// 0 disables reconnection). The initial dial is never retried — only a
// session that joined successfully reconnects.
func WithReconnect(attempts int) JobOption {
	return func(c *jobConfig) { c.reconnect = attempts; c.reconnectSet = true }
}

// WithWAL journals the aggregator backend's round-state transitions to a
// write-ahead log in dir. A job restarted on the same directory (and the
// same identity) replays the log and resumes the run where the crash left
// off — global parameters, outer-optimizer momentum, and any in-flight
// round — instead of starting over. On a relay (WithParent) the log holds
// the last upstream reply and codec residual for crash-safe redelivery.
func WithWAL(dir string) JobOption { return func(c *jobConfig) { c.walDir = dir } }

// WithAsync switches the aggregator backend from synchronous rounds to
// buffered asynchronous (FedBuff-style) aggregation. The aggregator
// broadcasts a continuously-versioned global model: every member trains
// at its own pace, and each returned update is folded into a buffer with
// weight 1/(1+staleness)^alpha, where staleness is how many versions the
// global model advanced while the member trained. After k folds the
// buffered aggregate is committed through the server optimizer and the
// version advances — fast members no longer wait on stragglers, they just
// out-contribute them. WithRounds counts version commits; WithRoundDeadline
// bounds each dispatch instead of a collective round. k < 1 defaults to 2
// and a negative alpha to 0.5; alpha 0 disables staleness discounting.
// Synchronous-only knobs (WithClientsPerRound, WithOverProvision) are
// ignored, and relay trees (WithParent) compose: relays forward
// version-stamped pseudo-gradients upstream, making the tree two-tier
// async.
func WithAsync(k int, alpha float64) JobOption {
	return func(c *jobConfig) { c.asyncSet = true; c.asyncK = k; c.asyncAlpha = alpha }
}

// WithRegistry publishes each committed round's checkpoint into a
// content-addressed model registry rooted at dir (SHA-256 blob addresses,
// lineage manifests, and a moving "latest" tag that photon-serve can load
// via -ckpt tag:latest). Aggregator backend only; registry failures are
// logged and counted, never fatal to training.
func WithRegistry(dir string) JobOption { return func(c *jobConfig) { c.registryDir = dir } }

// fill resolves zero values to per-backend defaults.
func (c *jobConfig) fill() {
	if c.backend == "" {
		c.backend = BackendFederated
	}
	if c.size == "" {
		c.size = SizeTiny
	}
	if c.seqLen == 0 {
		c.seqLen = 16
	}
	if c.maxLR == 0 {
		c.maxLR = 3e-3
	}
	if c.server == "" {
		c.server = string(FedAvg)
	}
	if c.dataSource == "" {
		c.dataSource = "c4"
	}
	if c.seed == 0 {
		c.seed = 1
	}
	if c.localSteps == 0 {
		c.localSteps = 16
	}
	if c.codec == "" {
		// Honor the deprecated WithCompression flag: it was the only way
		// to shrink the wire before codecs existed.
		if c.compress {
			c.codec = "flate"
		} else {
			c.codec = "dense"
		}
	}
	switch c.backend {
	case BackendCentralized:
		if c.steps == 0 {
			c.steps = 320
		}
		if c.workers == 0 {
			c.workers = 1
		}
		if c.batchSize == 0 {
			c.batchSize = 16
		}
		if c.evalEvery == 0 {
			c.evalEvery = 10
		}
	case BackendAggregator:
		if c.rounds == 0 {
			c.rounds = 10
		}
		if c.evalEvery == 0 {
			c.evalEvery = 1
		}
		if c.parent != "" && !c.reconnectSet {
			// A relay's parent link reconnects like a resilient client.
			c.reconnect = 5
		}
	case BackendClient:
		if c.batchSize == 0 {
			c.batchSize = 4
		}
		if !c.reconnectSet {
			c.reconnect = 5
		}
	default: // BackendFederated
		if c.clients == 0 {
			c.clients = 4
		}
		if c.clientsPerRound == 0 {
			c.clientsPerRound = c.clients
		}
		if c.rounds == 0 {
			c.rounds = 20
		}
		if c.batchSize == 0 {
			c.batchSize = 4
		}
		if c.evalEvery == 0 {
			c.evalEvery = 1
		}
	}
}

// expectedEvents bounds the number of RoundEvents a run can emit, sizing
// the events channel so training never blocks on a slow (or absent)
// consumer. Invalid (negative) round/step counts are clamped here and
// rejected with a proper error by the backend's own validation in Run.
func (c *jobConfig) expectedEvents() int {
	n := 0
	switch c.backend {
	case BackendCentralized:
		n = c.steps
		if c.evalEvery > 0 {
			n = c.steps / c.evalEvery
		}
	case BackendClient:
		// Round count is aggregator-driven and unknown here; size for any
		// realistic session length.
		n = 4096
	case BackendAggregator:
		n = c.rounds
		if c.parent != "" {
			// A relay's round count is parent-driven and unknown here.
			n = 4096
		}
	default:
		n = c.rounds
	}
	if n < 8 {
		n = 8
	}
	return n + 2
}
