package photon

import (
	"fmt"

	"photon/internal/data"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/opt"
)

// AggregatorOptions configures ServeAggregator, the networked Agg process.
type AggregatorOptions struct {
	Addr          string // listen address, e.g. ":9000"
	Size          ModelSize
	Rounds        int
	ExpectClients int
	SeqLen        int
	Server        ServerOptimizer
	Compress      bool
	Seed          int64
}

// ServeAggregator runs a real networked aggregator: it listens on Addr,
// waits for ExpectClients LLM clients to join over the Photon wire protocol,
// coordinates Rounds of federated training, and returns the final result.
func ServeAggregator(o AggregatorOptions) (*Result, error) {
	if o.Size == "" {
		o.Size = SizeTiny
	}
	if o.Rounds == 0 {
		o.Rounds = 10
	}
	if o.SeqLen == 0 {
		o.SeqLen = 16
	}
	if o.Server == "" {
		o.Server = FedAvg
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ExpectClients <= 0 {
		return nil, fmt.Errorf("photon: ExpectClients must be positive")
	}
	cfg, err := ModelConfig(o.Size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = o.SeqLen
	outer, err := Options{Server: o.Server}.outer()
	if err != nil {
		return nil, err
	}
	l, err := link.Listen(o.Addr, o.Compress)
	if err != nil {
		return nil, err
	}
	defer l.Close()

	res, err := fed.Serve(l, fed.ServerConfig{
		ModelConfig:   cfg,
		Seed:          o.Seed,
		Rounds:        o.Rounds,
		ExpectClients: o.ExpectClients,
		Outer:         outer,
		Validation:    data.NewValidationSet(data.C4Like(cfg.VocabSize), 16, cfg.SeqLen, 987654),
		EvalEvery:     1,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{model: res.FinalModel, FinalPerplexity: res.History.FinalPPL()}
	for _, r := range res.History.Rounds {
		out.Stats = append(out.Stats, RoundStat{
			Round: r.Round, TrainLoss: r.TrainLoss, Perplexity: r.ValPPL, Clients: r.Clients,
		})
	}
	return out, nil
}

// ClientOptions configures JoinAsClient, the networked LLM-C process.
type ClientOptions struct {
	Addr       string // aggregator address
	ID         string // client identity
	Size       ModelSize
	Shard      int // which of the 64 C4 shards this client holds
	LocalSteps int
	BatchSize  int
	SeqLen     int
	MaxLR      float64
	Compress   bool
	Seed       int64
}

// JoinAsClient connects to a networked aggregator and serves training rounds
// until the aggregator shuts the session down.
func JoinAsClient(o ClientOptions) error {
	if o.Size == "" {
		o.Size = SizeTiny
	}
	if o.LocalSteps == 0 {
		o.LocalSteps = 16
	}
	if o.BatchSize == 0 {
		o.BatchSize = 4
	}
	if o.SeqLen == 0 {
		o.SeqLen = 16
	}
	if o.MaxLR == 0 {
		o.MaxLR = 3e-3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ID == "" {
		return fmt.Errorf("photon: client ID required")
	}
	cfg, err := ModelConfig(o.Size)
	if err != nil {
		return err
	}
	cfg.SeqLen = o.SeqLen
	if o.Shard < 0 || o.Shard >= data.NumShards {
		return fmt.Errorf("photon: shard must be in 0..%d", data.NumShards-1)
	}
	stream := data.NewShard(data.C4Like(cfg.VocabSize), o.Shard, o.Seed+1000)
	client := fed.NewClient(o.ID, cfg, stream, opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))

	conn, err := link.Dial(o.Addr, o.Compress)
	if err != nil {
		return err
	}
	defer conn.Close()
	const period = 2000 // extended decay: high LR for the whole session
	return fed.ServeClient(conn, client, fed.LocalSpec{
		Steps:     o.LocalSteps,
		BatchSize: o.BatchSize,
		SeqLen:    cfg.SeqLen,
		Schedule:  opt.PaperCosine(o.MaxLR, period),
		ClipNorm:  1.0,
	})
}
