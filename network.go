package photon

import "context"

// AggregatorOptions configures ServeAggregator, the networked Agg process.
//
// Deprecated: build a Job with NewJob and WithBackend(BackendAggregator)
// instead; AggregatorOptions remains for the legacy entry point.
type AggregatorOptions struct {
	Addr          string // listen address, e.g. ":9000"
	Size          ModelSize
	Rounds        int
	ExpectClients int
	SeqLen        int
	Server        ServerOptimizer
	Compress      bool
	Seed          int64
}

// ServeAggregator runs a real networked aggregator: it listens on Addr,
// waits for ExpectClients LLM clients to join over the Photon wire protocol,
// coordinates Rounds of federated training, and returns the final result.
//
// Deprecated: use NewJob(WithBackend(BackendAggregator), ...).Run(ctx),
// which adds graceful shutdown and live Events telemetry.
func ServeAggregator(o AggregatorOptions) (*Result, error) {
	opts := []JobOption{
		WithBackend(BackendAggregator),
		WithAddr(o.Addr),
		WithModel(o.Size),
		WithRounds(o.Rounds),
		WithExpectClients(o.ExpectClients),
		WithSeqLen(o.SeqLen),
		WithCompression(o.Compress),
		WithSeed(o.Seed),
	}
	if o.Server != "" {
		opts = append(opts, WithServerOptimizer(string(o.Server)))
	}
	res, err := NewJob(opts...).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ClientOptions configures JoinAsClient, the networked LLM-C process.
//
// Deprecated: build a Job with NewJob and WithBackend(BackendClient)
// instead; ClientOptions remains for the legacy entry point.
type ClientOptions struct {
	Addr       string // aggregator address
	ID         string // client identity
	Size       ModelSize
	Shard      int // which of the 64 C4 shards this client holds
	LocalSteps int
	BatchSize  int
	SeqLen     int
	MaxLR      float64
	Compress   bool
	Seed       int64
}

// JoinAsClient connects to a networked aggregator and serves training rounds
// until the aggregator shuts the session down.
//
// Deprecated: use NewJob(WithBackend(BackendClient), ...).Run(ctx), which
// adds cancellation and client-side round telemetry.
func JoinAsClient(o ClientOptions) error {
	_, err := NewJob(
		WithBackend(BackendClient),
		WithAddr(o.Addr),
		WithClientID(o.ID),
		WithModel(o.Size),
		WithShard(o.Shard),
		WithLocalSteps(o.LocalSteps),
		WithBatchSize(o.BatchSize),
		WithSeqLen(o.SeqLen),
		WithMaxLR(o.MaxLR),
		WithCompression(o.Compress),
		WithSeed(o.Seed),
	).Run(context.Background())
	return err
}
