package photon

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"photon/internal/ckpt"
	"photon/internal/data"
	"photon/internal/ddp"
	"photon/internal/fed"
	"photon/internal/link"
	"photon/internal/metrics"
	"photon/internal/nn"
	"photon/internal/obsv"
	"photon/internal/opt"
)

// Job is a configured training run: one backend, one model, one recipe.
// Build it with NewJob, start it with Run, and watch it live through
// Events. A Job is single-use — Run may be called once.
type Job struct {
	cfg     jobConfig
	events  chan RoundEvent
	started atomic.Bool
	addr    atomic.Value // string: aggregator backend's bound listen address
	dropped atomic.Int64 // events evicted by drop-oldest backpressure
}

// NewJob assembles a job from functional options. Configuration problems
// (unknown backend, unregistered optimizer or data source names, missing
// required fields) are reported by Run, not here.
func NewJob(opts ...JobOption) *Job {
	var cfg jobConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()
	return &Job{cfg: cfg, events: make(chan RoundEvent, cfg.expectedEvents())}
}

// Events returns the job's telemetry stream: one RoundEvent per completed
// round (or evaluation interval), emitted while Run is executing and in
// round order. The channel is buffered for the whole run, so training never
// blocks on a slow consumer, and it is closed when Run returns — ranging
// over it terminates. If a backend produces more rounds than the buffer
// anticipated (BackendClient under a very long-lived aggregator, buffer
// 4096), the stream sheds load drop-oldest: the stalest buffered event is
// evicted so a late-attaching consumer sees the most recent telemetry
// rather than an ancient prefix. Result.DroppedEvents counts the
// evictions.
func (j *Job) Events() <-chan RoundEvent { return j.events }

// Addr returns the aggregator backend's bound listen address once Run has
// started listening, and "" before that (or for other backends). It makes
// WithAddr("127.0.0.1:0") usable: the kernel picks a free port and Addr
// reports it.
func (j *Job) Addr() string {
	s, _ := j.addr.Load().(string)
	return s
}

// Run executes the job until completion, cancellation, or error. It honors
// ctx: cancelling stops a run promptly mid-round, and Run then returns the
// partial Result for the rounds that completed together with ctx.Err().
func (j *Job) Run(ctx context.Context) (*Result, error) {
	if j.started.Swap(true) {
		return nil, errors.New("photon: job already run (jobs are single-use; build a new one)")
	}
	defer close(j.events)
	var res *Result
	var err error
	switch j.cfg.backend {
	case BackendFederated:
		res, err = j.runFederated(ctx)
	case BackendCentralized:
		res, err = j.runCentralized(ctx)
	case BackendAggregator:
		res, err = j.runAggregator(ctx)
	case BackendClient:
		res, err = j.runClient(ctx)
	default:
		return nil, fmt.Errorf("photon: unknown backend %q", j.cfg.backend)
	}
	if res != nil {
		res.DroppedEvents = int(j.dropped.Load())
	}
	return res, err
}

// emit forwards a round record to the events channel and refreshes the
// process-wide scrape instruments. The channel is sized for the run's full
// event count, so backpressure only engages if a backend produces more
// rounds than anticipated (client backend under a very long-lived
// aggregator). When it does, the policy is drop-oldest: evict the stalest
// buffered event and retry, so an attached consumer always sees the most
// recent rounds. emit is the sole sender, but a consumer may race it for
// the oldest element, so the evict-retry loop is bounded; in the
// (theoretical) worst case the new event itself is counted dropped rather
// than blocking training.
func (j *Job) emit(r metrics.Round) {
	j.scrape(r)
	ev := eventFromRound(r)
	for attempt := 0; attempt < 3; attempt++ {
		select {
		case j.events <- ev:
			return
		default:
		}
		select {
		case <-j.events: // evict oldest
			j.dropped.Add(1)
		default: // a consumer drained it first; retry the send
		}
	}
	j.dropped.Add(1)
}

// scrape mirrors the round record onto the process-wide obsv registry so a
// -metrics-addr listener (or any embedder serving obsv.Default) exposes
// live training state without subscribing to the event stream.
func (j *Job) scrape(r metrics.Round) {
	reg := obsv.Default
	reg.Counter("photon_rounds_total", "Completed training rounds.").Inc()
	reg.Gauge("photon_round", "Most recent completed round number.").Set(float64(r.Round))
	if r.TrainLoss > 0 {
		reg.Gauge("photon_train_loss", "Mean participating-client training loss (nats/token).").Set(r.TrainLoss)
	}
	if r.ValPPL > 0 {
		reg.Gauge("photon_val_perplexity", "Latest validation perplexity.").Set(r.ValPPL)
	}
	reg.Gauge("photon_round_clients", "Clients aggregated in the most recent round.").Set(float64(r.Clients))
	reg.Counter("photon_wire_sent_bytes_total", "Bytes sent on the wire across rounds.").Add(r.WireSentBytes)
	reg.Counter("photon_wire_recv_bytes_total", "Bytes received on the wire across rounds.").Add(r.WireRecvBytes)
	reg.Counter("photon_round_joins_total", "Members joined or rejoined across rounds.").Add(int64(r.Joins))
	reg.Counter("photon_round_evictions_total", "Members evicted across rounds.").Add(int64(r.Evictions))
	reg.Counter("photon_round_stragglers_total", "Cohort slots dropped at round deadlines.").Add(int64(r.Stragglers))
	if r.WallMs > 0 {
		reg.Histogram("photon_round_seconds", "Round wall time.", nil).Observe(r.WallMs / 1e3)
	}
	if r.ModelVersion > 0 {
		reg.Gauge("photon_model_version", "Committed global model version (async aggregation).").Set(float64(r.ModelVersion))
		reg.Gauge("photon_buffer_fill", "Updates folded into the latest async commit.").Set(float64(r.BufferFill))
		reg.Gauge("photon_update_staleness", "Mean staleness (versions) of the latest commit's updates.").Set(r.MeanStaleness)
	}
}

// newResult converts an internal run result to the public form.
func newResult(model *nn.Model, hist *metrics.History) *Result {
	out := &Result{model: model}
	if hist != nil {
		out.FinalPerplexity = hist.FinalPPL()
		for _, r := range hist.Rounds {
			out.Stats = append(out.Stats, RoundStat{
				Round: r.Round, TrainLoss: r.TrainLoss, Perplexity: r.ValPPL,
				Clients: r.Clients, CommBytes: r.CommBytes,
				WireSentBytes: r.WireSentBytes, WireRecvBytes: r.WireRecvBytes,
				CompressionRatio: r.CompressionRatio,
				EncodeMs:         r.EncodeMs, DecodeMs: r.DecodeMs,
				Tier: r.Tier, Depth: r.Depth,
				Joins: r.Joins, Evictions: r.Evictions, Stragglers: r.Stragglers,
				HeartbeatRTTMs:    r.HeartbeatRTTMs,
				HeartbeatRTTP99Ms: r.HeartbeatRTTP99Ms,
				TraceID:           r.TraceID,
				WallMs:            r.WallMs,
				Phases:            PhaseBreakdown(r.Phases),
				SlowestID:         r.SlowestID,
				SlowestPhase:      r.SlowestPhase,
				ModelVersion:      r.ModelVersion,
				BufferFill:        r.BufferFill,
				MeanStaleness:     r.MeanStaleness,
			})
			out.Joins += r.Joins
			out.Evictions += r.Evictions
			out.Stragglers += r.Stragglers
		}
	}
	return out
}

func (j *Job) runFederated(ctx context.Context) (*Result, error) {
	c := j.cfg
	cfg, err := ModelConfig(c.size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = c.seqLen

	srcs, err := lookupDataSource(c.dataSource, cfg.VocabSize)
	if err != nil {
		return nil, err
	}
	var part *data.Partition
	var valSrc data.Source
	if len(srcs) == 1 {
		valSrc = srcs[0]
		part, err = data.IIDPartition(srcs[0], c.clients, c.seed+1000)
	} else {
		part, err = data.BySourcePartition(srcs, c.clients, c.seed+1000)
		valSrc = data.NewMixtureSource(c.dataSource, srcs, nil)
	}
	if err != nil {
		return nil, err
	}

	clients := make([]*fed.Client, part.NumClients())
	for i := range clients {
		clients[i] = fed.NewClient(part.SourceNames[i], cfg, part.ClientStreams[i],
			opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))
	}
	outer, err := lookupServerOptimizer(c.server)
	if err != nil {
		return nil, err
	}
	var post link.Pipeline
	if c.clipUpdateNorm > 0 {
		post = link.Pipeline{link.NaNGuard{}, link.ClipL2{MaxNorm: c.clipUpdateNorm}}
	}
	// Extended decay period (Appendix C.1): decay over 4x the planned run so
	// the high learning rate persists, with the PaperCosine 1% warmup.
	period := 4 * c.rounds * c.localSteps
	if period < 200 {
		period = 200
	}
	var initParams []float32
	startRound := 0
	if c.resumeFrom != "" {
		snap, err := ckpt.Load(c.resumeFrom)
		if err != nil {
			return nil, fmt.Errorf("photon: resume: %w", err)
		}
		initParams = snap.Params
		startRound = snap.Round
	}

	res, err := fed.Run(ctx, fed.RunConfig{
		ModelConfig:     cfg,
		Seed:            c.seed,
		Rounds:          c.rounds,
		ClientsPerRound: c.clientsPerRound,
		Clients:         clients,
		Outer:           outer,
		Spec: fed.LocalSpec{
			Steps:     c.localSteps,
			BatchSize: c.batchSize,
			SeqLen:    cfg.SeqLen,
			Schedule:  opt.PaperCosine(c.maxLR, period),
			ClipNorm:  1.0,
		},
		Validation:     data.NewValidationSet(valSrc, 16, cfg.SeqLen, 987654),
		EvalEvery:      c.evalEvery,
		Post:           post,
		Codec:          c.codec,
		Tiers:          c.tiers,
		Relays:         c.relays,
		UpstreamCodec:  c.upstreamCodec,
		DropoutProb:    c.dropoutProb,
		CheckpointPath: c.checkpointPath,
		InitParams:     initParams,
		StartRound:     startRound,
		StopAtPPL:      c.stopAtPPL,
		OnRound:        j.emit,
	})
	if res == nil {
		return nil, err
	}
	return newResult(res.FinalModel, res.History), err
}

func (j *Job) runCentralized(ctx context.Context) (*Result, error) {
	c := j.cfg
	cfg, err := ModelConfig(c.size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = c.seqLen
	if c.workers < 1 || c.workers > data.NumShards {
		return nil, fmt.Errorf("photon: workers must be in 1..%d", data.NumShards)
	}
	src := data.C4Like(cfg.VocabSize)
	streams := make([]data.Stream, c.workers)
	for i := range streams {
		streams[i] = data.NewShard(src, i, c.seed+1000)
	}
	res, err := ddp.Run(ctx, ddp.Config{
		ModelConfig: cfg,
		Seed:        c.seed,
		Steps:       c.steps,
		Workers:     c.workers,
		BatchSize:   c.batchSize,
		SeqLen:      cfg.SeqLen,
		Schedule:    opt.PaperCosine(c.maxLR, c.steps),
		ClipNorm:    1.0,
		Streams:     streams,
		Validation:  data.NewValidationSet(src, 16, cfg.SeqLen, 987654),
		EvalEvery:   c.evalEvery,
		StopAtPPL:   c.stopAtPPL,
		OnRound:     j.emit,
	})
	if res == nil {
		return nil, err
	}
	return newResult(res.FinalModel, res.History), err
}

func (j *Job) runAggregator(ctx context.Context) (*Result, error) {
	c := j.cfg
	if c.parent != "" {
		return j.runRelay(ctx)
	}
	if c.expectClients <= 0 {
		return nil, fmt.Errorf("photon: aggregator backend requires WithExpectClients > 0")
	}
	cfg, err := ModelConfig(c.size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = c.seqLen
	outer, err := lookupServerOptimizer(c.server)
	if err != nil {
		return nil, err
	}
	l, err := link.Listen(c.addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	j.addr.Store(l.Addr())

	var async *fed.AsyncConfig
	if c.asyncSet {
		async = &fed.AsyncConfig{K: c.asyncK, Alpha: c.asyncAlpha, MinHealth: fed.DefaultAsyncMinHealth}
	}
	res, err := fed.Serve(ctx, l, fed.ServerConfig{
		ModelConfig:       cfg,
		Seed:              c.seed,
		Rounds:            c.rounds,
		ExpectClients:     c.expectClients,
		ClientsPerRound:   c.clientsPerRound,
		MinClients:        c.minClients,
		HeartbeatInterval: c.heartbeat,
		RoundDeadline:     c.roundDeadline,
		OverProvision:     c.overProvision,
		Codec:             c.codec,
		Outer:             outer,
		Validation:        data.NewValidationSet(data.C4Like(cfg.VocabSize), 16, cfg.SeqLen, 987654),
		EvalEvery:         c.evalEvery,
		OnRound:           j.emit,
		WALDir:            c.walDir,
		RegistryDir:       c.registryDir,
		Async:             async,
	})
	if res == nil {
		return nil, err
	}
	return newResult(res.FinalModel, res.History), err
}

// runRelay serves the relay flavor of the aggregator backend (WithParent):
// listen for the regional cohort on WithAddr, join the parent aggregator,
// and bridge parent rounds onto cohort rounds. The run ends when the parent
// shuts the session down (or the parent link is lost beyond the reconnect
// budget); validation perplexity is the root's job, so the result reports 0.
func (j *Job) runRelay(ctx context.Context) (*Result, error) {
	c := j.cfg
	if c.expectClients <= 0 {
		return nil, fmt.Errorf("photon: relay requires WithExpectClients > 0 (its cohort size)")
	}
	cfg, err := ModelConfig(c.size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = c.seqLen
	outer, err := lookupServerOptimizer(c.server)
	if err != nil {
		return nil, err
	}
	l, err := link.Listen(c.addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	j.addr.Store(l.Addr())
	id := c.clientID
	if id == "" {
		id = "relay@" + l.Addr()
	}
	res, err := fed.RunRelay(ctx, l, func(ctx context.Context) (*link.Conn, error) {
		return link.DialContext(ctx, c.parent)
	}, fed.RelayConfig{
		ModelConfig:       cfg,
		ID:                id,
		Seed:              c.seed,
		ExpectClients:     c.expectClients,
		ClientsPerRound:   c.clientsPerRound,
		MinClients:        c.minClients,
		HeartbeatInterval: c.heartbeat,
		RoundDeadline:     c.roundDeadline,
		OverProvision:     c.overProvision,
		Codec:             c.codec,
		Outer:             outer,
		Parent: fed.ReconnectConfig{
			MaxAttempts: c.reconnect,
			Codec:       c.upstreamCodec,
		},
		OnRound: j.emit,
		WALDir:  c.walDir,
	})
	if res == nil {
		return nil, err
	}
	// Like the root aggregator path, a failed run still reports the partial
	// tier history alongside the error.
	out := newResult(res.FinalModel, res.History)
	out.FinalPerplexity = 0 // evaluation happens at the root
	return out, err
}

func (j *Job) runClient(ctx context.Context) (*Result, error) {
	c := j.cfg
	if c.clientID == "" {
		return nil, fmt.Errorf("photon: client backend requires WithClientID")
	}
	cfg, err := ModelConfig(c.size)
	if err != nil {
		return nil, err
	}
	cfg.SeqLen = c.seqLen
	if c.shard < 0 || c.shard >= data.NumShards {
		return nil, fmt.Errorf("photon: shard must be in 0..%d", data.NumShards-1)
	}
	stream := data.NewShard(data.C4Like(cfg.VocabSize), c.shard, c.seed+1000)
	client := fed.NewClient(c.clientID, cfg, stream, opt.NewAdamW(cfg.Beta1, cfg.Beta2, 0.01))

	const period = 2000 // extended decay: high LR for the whole session
	hist := &metrics.History{}
	// The session dials once up front (a failure here reports immediately)
	// and then survives aggregator connection churn: a dropped connection
	// is redialed with exponential backoff and the client rejoins under
	// its ID, resuming at the aggregator's current round.
	// Codec negotiation is server-driven: an explicit WithCodec on the
	// client is a strict requirement against the aggregator's
	// announcement, while the default accepts whatever is announced.
	requireCodec := ""
	if c.codecSet {
		requireCodec = c.codec
	}
	err = fed.RunResilientClient(ctx, func(ctx context.Context) (*link.Conn, error) {
		return link.DialContext(ctx, c.addr)
	}, client, fed.LocalSpec{
		Steps:     c.localSteps,
		BatchSize: c.batchSize,
		SeqLen:    cfg.SeqLen,
		Schedule:  opt.PaperCosine(c.maxLR, period),
		ClipNorm:  1.0,
	}, fed.ReconnectConfig{
		MaxAttempts:    c.reconnect,
		CheckpointPath: c.checkpointPath,
		Codec:          requireCodec,
	}, func(r metrics.Round) {
		hist.Append(r)
		j.emit(r)
	})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	// The client holds its last local replica; expose it with the
	// client-side round history (no validation PPL — evaluation is the
	// aggregator's job, so the result reports 0 = not evaluated).
	res := newResult(client.Model, hist)
	res.FinalPerplexity = 0
	return res, err
}
